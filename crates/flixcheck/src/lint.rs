//! The workspace lint pass.
//!
//! [`run`] walks every production source tree — `crates/*/src/**/*.rs`,
//! the workspace root `src/`, and `examples/` — and applies two families
//! of rules:
//!
//! **Text rules** over the comment/literal-stripped view of each file
//! (see [`crate::scanner`]), with `#[cfg(test)]` items masked:
//!
//! * `unwrap-expect` — no `.unwrap()` / `.expect(` outside tests.
//!   Grandfathered occurrences live in `crates/flixcheck/allowlist.txt`
//!   as per-file ceilings that may shrink but never grow.
//! * `panic` — no `panic!` / `todo!` / `unimplemented!` in library code.
//!   There is deliberately no allowlist for this rule.
//! * `unsafe` — `unsafe` only where the allowlist explicitly permits it.
//! * `missing-docs` — public items in the core crates (see [`DOC_CRATES`])
//!   must carry a doc comment.
//! * `instant-now` — `Instant::now()` and `SystemTime::now()` only inside
//!   the `obs` crate: all other code must time through
//!   `flixobs::Stopwatch`, so measurements cannot bypass the
//!   observability layer (and wall-clock steps cannot corrupt durations).
//! * `unbounded-channel` — no `unbounded()` / `mpsc::channel()` channel
//!   construction outside the allowlist: the serving path must use bounded
//!   queues so overload sheds instead of buffering without limit.
//! * `unsynced-write` — no raw `fs::write(` / `File::create(` outside
//!   pagestore's durability layer ([`DURABILITY_FILES`]): durable state
//!   must go through the disk/WAL/manifest protocol, which pairs every
//!   write with its fsync or atomic rename; non-durable artifacts carry
//!   an inline suppression saying so.
//!
//! **Token rules** over the real token stream ([`crate::lex`]) and parse
//! ([`crate::parse`]):
//!
//! * `cast-truncation` — a narrowing `as {u8,u16,i8,i16}` cast applied to
//!   a length/index-shaped value (`.len()`, `*_count`, `*_idx`, ...).
//! * `swallowed-result` — `let _ = f(..);` where the final callee is a
//!   known fallible operation (`send`, `recv`, `join`, `flush`, ...) or a
//!   workspace fn that returns `Result`.
//! * `atomic-ordering` — bare `Ordering::Relaxed` outside the `obs` crate
//!   (whose counters are the sanctioned relaxed hot path).
//! * `lock-order` / `blocking-while-locked` — the cross-file concurrency
//!   model of [`crate::conc`]: lock-order-graph cycles and blocking
//!   operations performed while a lock guard is live.
//!
//! New-rule findings are silenced only by an **inline suppression** on the
//! offending line or the line above:
//!
//! ```text
//! // flixcheck: allow(cast-truncation): page offsets fit u16 by format
//! ```
//!
//! The reason is mandatory, and a suppression that matches no diagnostic
//! is itself a `suppression` diagnostic, so stale ones cannot linger. The
//! legacy per-file allowlist remains shrink-only for grandfathered rules.
//!
//! Diagnostics are machine readable: `path:line: rule: message` (see also
//! [`crate::sarif`] for JSON and SARIF 2.1.0 output).

use crate::conc;
use crate::lex::{lex, TokKind, Token};
use crate::parse::{parse, ParsedFile};
use crate::scanner::{excluded_regions, line_of, strip_source, Region};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose public items must be documented.
const DOC_CRATES: &[&str] = &[
    "apex",
    "graphcore",
    "hopi",
    "pagestore",
    "obs",
    "flix",
    "ppo",
    "serve",
    "xmlgraph",
];

/// The one crate allowed to call `Instant::now()` directly (it hosts
/// `flixobs::Stopwatch`, the sanctioned clock).
const CLOCK_CRATE_PREFIX: &str = "crates/obs/";

/// The files allowed to create and write files directly: pagestore's
/// durability layer, where every write is paired with the fsync or
/// atomic-rename step the recovery protocol needs. Everywhere else a raw
/// `fs::write`/`File::create` is either durable state bypassing that
/// protocol (a bug) or a non-durable artifact (suppress with a reason).
const DURABILITY_FILES: &[&str] = &[
    "crates/pagestore/src/disk.rs",
    "crates/pagestore/src/wal.rs",
    "crates/pagestore/src/snapshot.rs",
];

/// Final callees whose `Result` must not be discarded via `let _ =`.
const FALLIBLE_BUILTINS: &[&str] = &[
    "send",
    "try_send",
    "recv",
    "try_recv",
    "recv_timeout",
    "join",
    "flush",
    "write_all",
    "sync_all",
];

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` in non-test library code.
    UnwrapExpect,
    /// `panic!` / `todo!` / `unimplemented!` in library code.
    Panic,
    /// `unsafe` outside the allowlist.
    Unsafe,
    /// Undocumented public item in a documented crate.
    MissingDocs,
    /// `Instant::now()` or `SystemTime::now()` outside the `obs` crate
    /// (use `flixobs::Stopwatch`).
    InstantNow,
    /// `unbounded()` / `mpsc::channel()` channel construction outside the
    /// allowlist (bounded queues only on hot paths).
    UnboundedChannel,
    /// Cycle in the workspace lock-order graph (potential deadlock).
    LockOrder,
    /// Blocking operation while a lock guard is live.
    BlockingWhileLocked,
    /// Narrowing `as` cast on a length/index-shaped value.
    CastTruncation,
    /// `let _ =` discarding a known-fallible call's `Result`.
    SwallowedResult,
    /// Bare `Ordering::Relaxed` outside the sanctioned counter hot path.
    AtomicOrdering,
    /// `fs::write` / `File::create` outside pagestore's durability layer
    /// (no fsync / atomic-rename protocol behind the write).
    UnsyncedWrite,
    /// Malformed, reason-less, or unused inline suppression.
    Suppression,
    /// Allowlist entry whose ceiling is higher than reality (or whose
    /// file no longer exists): the ceiling must be lowered.
    AllowlistStale,
}

impl Rule {
    /// Every rule, in diagnostic-name order (used for SARIF metadata).
    pub const ALL: &'static [Rule] = &[
        Rule::UnwrapExpect,
        Rule::Panic,
        Rule::Unsafe,
        Rule::MissingDocs,
        Rule::InstantNow,
        Rule::UnboundedChannel,
        Rule::LockOrder,
        Rule::BlockingWhileLocked,
        Rule::CastTruncation,
        Rule::SwallowedResult,
        Rule::AtomicOrdering,
        Rule::UnsyncedWrite,
        Rule::Suppression,
        Rule::AllowlistStale,
    ];

    /// The rule's stable name, as used in diagnostics and the allowlist.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnwrapExpect => "unwrap-expect",
            Rule::Panic => "panic",
            Rule::Unsafe => "unsafe",
            Rule::MissingDocs => "missing-docs",
            Rule::InstantNow => "instant-now",
            Rule::UnboundedChannel => "unbounded-channel",
            Rule::LockOrder => "lock-order",
            Rule::BlockingWhileLocked => "blocking-while-locked",
            Rule::CastTruncation => "cast-truncation",
            Rule::SwallowedResult => "swallowed-result",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::UnsyncedWrite => "unsynced-write",
            Rule::Suppression => "suppression",
            Rule::AllowlistStale => "allowlist-stale",
        }
    }

    /// Rules the legacy per-file allowlist may grandfather. New rules are
    /// deliberately absent: their only escape hatch is an inline
    /// suppression with a reason.
    fn from_allowlist_name(name: &str) -> Option<Rule> {
        match name {
            "unwrap-expect" => Some(Rule::UnwrapExpect),
            "panic" => Some(Rule::Panic),
            "unsafe" => Some(Rule::Unsafe),
            "missing-docs" => Some(Rule::MissingDocs),
            "instant-now" => Some(Rule::InstantNow),
            "unbounded-channel" => Some(Rule::UnboundedChannel),
            _ => None,
        }
    }

    /// Rules an inline suppression may name (everything a source line can
    /// cause; `suppression` and `allowlist-stale` cannot suppress
    /// themselves).
    fn from_suppress_name(name: &str) -> Option<Rule> {
        Rule::ALL
            .iter()
            .copied()
            .filter(|r| !matches!(r, Rule::Suppression | Rule::AllowlistStale))
            .find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single lint finding, formatted as `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-indexed line number (0 for file-level findings).
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The outcome of a full lint pass.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// True if the workspace lock-order graph contains a cycle.
    pub lock_graph_cyclic: bool,
    /// Lock-order edges observed (for reporting/debugging).
    pub lock_edges: Vec<conc::LockEdge>,
}

impl LintReport {
    /// True if the pass found no violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// One parsed allowlist entry: at most `max` findings of `rule` in `path`.
#[derive(Debug, Clone)]
struct AllowEntry {
    rule: Rule,
    path: String,
    max: usize,
    /// Line in the allowlist file, for stale-entry diagnostics.
    source_line: usize,
}

/// One inline `// flixcheck: allow(<rule>): <reason>` comment.
struct Suppression {
    /// Line the comment sits on (covers trailing diagnostics on it).
    line: usize,
    /// First non-suppression line after `line` — the code line covered.
    /// Stacked suppression comments chain, so several rules can be
    /// suppressed on one code line.
    until: usize,
    rule: Rule,
    used: bool,
}

/// Locates the workspace root by walking up from `CARGO_MANIFEST_DIR`
/// (set by cargo for both `cargo run` and `cargo test`) or the current
/// directory, whichever first contains `Cargo.toml` and a `crates/` dir.
pub fn find_workspace_root() -> Option<PathBuf> {
    let mut candidates: Vec<PathBuf> = Vec::new();
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        candidates.push(PathBuf::from(dir));
    }
    if let Ok(dir) = std::env::current_dir() {
        candidates.push(dir);
    }
    for start in candidates {
        for dir in start.ancestors() {
            if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
                return Some(dir.to_path_buf());
            }
        }
    }
    None
}

/// Runs the lint pass over the workspace found via [`find_workspace_root`].
pub fn run_default() -> Result<LintReport, io::Error> {
    let root = find_workspace_root().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "workspace root (Cargo.toml + crates/) not found",
        )
    })?;
    run(&root)
}

/// Runs the lint pass over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<LintReport, io::Error> {
    let files = collect_workspace_sources(root)?;
    let allowlist = load_allowlist(&root.join("crates/flixcheck/allowlist.txt"))?;

    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        let rel = relative_path(root, file);
        let src = fs::read_to_string(file)?;
        sources.push((rel, src));
    }
    let (mut raw, cyclic, edges) = analyze_sources(&sources);

    // Apply the legacy allowlist: (rule, path) ceilings on what remains.
    let mut found: BTreeMap<(Rule, String), Vec<Diagnostic>> = BTreeMap::new();
    let mut diagnostics = Vec::new();
    for diag in raw.drain(..) {
        if Rule::from_allowlist_name(diag.rule.name()).is_some() {
            found
                .entry((diag.rule, diag.path.clone()))
                .or_default()
                .push(diag);
        } else {
            diagnostics.push(diag);
        }
    }
    for entry in &allowlist {
        let occurrences = found
            .get(&(entry.rule, entry.path.clone()))
            .map_or(0, Vec::len);
        if occurrences < entry.max {
            diagnostics.push(Diagnostic {
                path: "crates/flixcheck/allowlist.txt".to_string(),
                line: entry.source_line,
                rule: Rule::AllowlistStale,
                message: format!(
                    "{} allows {} `{}` findings but only {} remain; lower the ceiling",
                    entry.path, entry.max, entry.rule, occurrences
                ),
            });
        }
    }
    for ((rule, path), occurrences) in found {
        let max = allowlist
            .iter()
            .find(|e| e.rule == rule && e.path == path)
            .map_or(0, |e| e.max);
        let count = occurrences.len();
        if count > max {
            for mut diag in occurrences {
                if max > 0 {
                    diag.message = format!(
                        "{} ({count} found in {path}, {max} grandfathered in allowlist)",
                        diag.message
                    );
                }
                diagnostics.push(diag);
            }
        }
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(LintReport {
        diagnostics,
        files_scanned: files.len(),
        lock_graph_cyclic: cyclic,
        lock_edges: edges,
    })
}

/// Lints a single file given its workspace-relative path and raw source.
/// Runs the full pipeline (text rules, token rules, concurrency model,
/// suppressions) but not the workspace allowlist.
pub fn lint_file(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let (mut diags, _, _) = analyze_sources(&[(rel_path.to_string(), src.to_string())]);
    diags.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    diags
}

/// The allowlist-free analysis core: every rule over every source, with
/// inline suppressions applied. Returns raw diagnostics plus the
/// lock-order graph verdict.
fn analyze_sources(sources: &[(String, String)]) -> (Vec<Diagnostic>, bool, Vec<conc::LockEdge>) {
    struct Prepared {
        tokens: Vec<Token>,
        parsed: ParsedFile,
    }
    let prepared: Vec<Prepared> = sources
        .iter()
        .map(|(_, src)| {
            let tokens = lex(src);
            let parsed = parse(src, &tokens);
            Prepared { tokens, parsed }
        })
        .collect();

    // Workspace registry of fn names that return Result (for
    // swallowed-result). Conservative: any fn anywhere with that name.
    let mut result_fns: BTreeSet<&str> = BTreeSet::new();
    for p in &prepared {
        for f in &p.parsed.fns {
            if f.returns_result && !f.in_test {
                result_fns.insert(&f.name);
            }
        }
    }

    let mut diagnostics = Vec::new();
    let mut suppressions: BTreeMap<&str, Vec<Suppression>> = BTreeMap::new();
    for ((rel, src), p) in sources.iter().zip(&prepared) {
        suppressions.insert(
            rel,
            collect_suppressions(rel, src, &p.tokens, &p.parsed, &mut diagnostics),
        );
        text_rules(rel, src, &mut diagnostics);
        token_rules(
            rel,
            src,
            &p.tokens,
            &p.parsed,
            &result_fns,
            &mut diagnostics,
        );
    }

    let units: Vec<conc::SourceUnit<'_>> = sources
        .iter()
        .zip(&prepared)
        .map(|((rel, src), p)| conc::SourceUnit {
            path: rel,
            src,
            tokens: &p.tokens,
            parsed: &p.parsed,
        })
        .collect();
    let conc_report = conc::analyze(&units);
    diagnostics.extend(conc_report.diagnostics);

    // Apply inline suppressions: a comment on line L silences matching
    // diagnostics on lines L and L+1 of the same file.
    diagnostics.retain(|d| {
        if let Some(supps) = suppressions.get_mut(d.path.as_str()) {
            for s in supps.iter_mut() {
                if s.rule == d.rule && (d.line == s.line || d.line == s.until) {
                    s.used = true;
                    return false;
                }
            }
        }
        true
    });
    for (rel, supps) in &suppressions {
        for s in supps {
            if !s.used {
                diagnostics.push(Diagnostic {
                    path: (*rel).to_string(),
                    line: s.line,
                    rule: Rule::Suppression,
                    message: format!(
                        "suppression for `{}` matched no diagnostic on this or the \
                         next line; remove it",
                        s.rule
                    ),
                });
            }
        }
    }

    (diagnostics, conc_report.cyclic, conc_report.edges)
}

/// Parses every `// flixcheck: allow(<rule>): <reason>` comment in the
/// file. Malformed or reason-less suppressions become diagnostics
/// immediately (and suppress nothing). Suppressions inside test code are
/// ignored: tests are exempt from the rules anyway.
fn collect_suppressions(
    rel_path: &str,
    src: &str,
    tokens: &[Token],
    parsed: &ParsedFile,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for tok in tokens {
        let TokKind::LineComment { .. } = tok.kind else {
            continue;
        };
        let body = tok.text(src).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("flixcheck:") else {
            continue;
        };
        if parsed.in_test(tok.start) {
            continue;
        }
        let line = line_of(src, tok.start);
        let mut bad = |msg: String| {
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line,
                rule: Rule::Suppression,
                message: msg,
            });
        };
        let rest = rest.trim();
        let Some(inner) = rest.strip_prefix("allow(") else {
            bad("malformed suppression; want `// flixcheck: allow(<rule>): <reason>`".to_string());
            continue;
        };
        let Some(close) = inner.find(')') else {
            bad("malformed suppression: missing `)`".to_string());
            continue;
        };
        let rule_name = inner[..close].trim();
        let Some(rule) = Rule::from_suppress_name(rule_name) else {
            bad(format!("unknown rule `{rule_name}` in suppression"));
            continue;
        };
        let after = inner[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad(format!(
                "suppression of `{rule_name}` requires a reason: \
                 `// flixcheck: allow({rule_name}): <why this is sound>`"
            ));
            continue;
        }
        out.push(Suppression {
            line,
            until: line + 1,
            rule,
            used: false,
        });
    }
    // Stacked suppression comments chain: each covers the first following
    // line that is not itself a suppression comment.
    let lines: BTreeSet<usize> = out.iter().map(|s| s.line).collect();
    for s in &mut out {
        while lines.contains(&s.until) {
            s.until += 1;
        }
    }
    out
}

/// The legacy strip-and-scan rules over one file.
fn text_rules(rel_path: &str, src: &str, diags: &mut Vec<Diagnostic>) {
    let stripped = strip_source(src);
    let excluded = excluded_regions(&stripped);

    let in_tests = |pos: usize| excluded.iter().any(|r| r.contains(pos));

    for pat in [".unwrap()", ".expect("] {
        for pos in find_all(&stripped, pat) {
            if in_tests(pos) {
                continue;
            }
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: line_of(&stripped, pos),
                rule: Rule::UnwrapExpect,
                message: format!("`{pat}` in non-test library code; propagate a Result instead"),
            });
        }
    }

    for pat in ["panic!", "todo!", "unimplemented!"] {
        for pos in find_all(&stripped, pat) {
            if in_tests(pos) || !word_boundary_before(&stripped, pos) {
                continue;
            }
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: line_of(&stripped, pos),
                rule: Rule::Panic,
                message: format!("`{pat}` in library code; return an error instead"),
            });
        }
    }

    for pos in find_all(&stripped, "unsafe") {
        let after = stripped.as_bytes().get(pos + "unsafe".len());
        let word_end = after.map_or(true, |&b| !b.is_ascii_alphanumeric() && b != b'_');
        if in_tests(pos) || !word_boundary_before(&stripped, pos) || !word_end {
            continue;
        }
        // `forbid(unsafe_code)` / `deny(unsafe_code)` mentions are handled
        // by the word-end check; this is a real `unsafe` keyword.
        diags.push(Diagnostic {
            path: rel_path.to_string(),
            line: line_of(&stripped, pos),
            rule: Rule::Unsafe,
            message: "`unsafe` outside the allowlist".to_string(),
        });
    }

    if !rel_path.starts_with(CLOCK_CRATE_PREFIX) {
        // Both raw clocks bypass the obs layer: `Instant::now()` dodges
        // `Stopwatch` (so the measurement is invisible to traces and the
        // flight recorder), and `SystemTime::now()` additionally isn't
        // monotonic — wall-clock steps corrupt any duration computed
        // from it.
        for clock in ["Instant::now", "SystemTime::now"] {
            for pos in find_all(&stripped, clock) {
                if in_tests(pos) {
                    continue;
                }
                diags.push(Diagnostic {
                    path: rel_path.to_string(),
                    line: line_of(&stripped, pos),
                    rule: Rule::InstantNow,
                    message: format!(
                        "`{clock}()` outside the obs crate; time through \
                         `flixobs::Stopwatch` so measurements stay observable"
                    ),
                });
            }
        }
    }

    for pat in ["unbounded(", "mpsc::channel()"] {
        for pos in find_all(&stripped, pat) {
            if in_tests(pos) || !word_boundary_before(&stripped, pos) {
                continue;
            }
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: line_of(&stripped, pos),
                rule: Rule::UnboundedChannel,
                message: format!(
                    "`{pat}` builds an unbounded channel; use a bounded queue so \
                     overload sheds instead of buffering without limit"
                ),
            });
        }
    }

    if !DURABILITY_FILES.contains(&rel_path) {
        for pat in ["fs::write(", "File::create("] {
            for pos in find_all(&stripped, pat) {
                if in_tests(pos) {
                    continue;
                }
                diags.push(Diagnostic {
                    path: rel_path.to_string(),
                    line: line_of(&stripped, pos),
                    rule: Rule::UnsyncedWrite,
                    message: format!(
                        "`{pat}..)` writes a file with no fsync or atomic-rename behind \
                         it; durable state belongs in pagestore's disk/WAL/manifest \
                         layer — suppress with a reason if this is a non-durable artifact"
                    ),
                });
            }
        }
    }

    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next());
    if crate_name.is_some_and(|c| DOC_CRATES.contains(&c)) {
        missing_docs(rel_path, src, &stripped, &excluded, diags);
    }
}

/// The lexer-backed rules over one file: `cast-truncation`,
/// `swallowed-result`, `atomic-ordering`.
fn token_rules(
    rel_path: &str,
    src: &str,
    tokens: &[Token],
    parsed: &ParsedFile,
    result_fns: &BTreeSet<&str>,
    diags: &mut Vec<Diagnostic>,
) {
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_trivia())
        .collect();
    let text = |si: usize| tokens[sig[si]].text(src);
    let start = |si: usize| tokens[sig[si]].start;

    for si in 0..sig.len() {
        if parsed.in_test(start(si)) {
            continue;
        }
        let t = text(si);

        // cast-truncation: `<lengthish> as {u8,u16,i8,i16}`.
        if t == "as"
            && si >= 1
            && si + 1 < sig.len()
            && matches!(text(si + 1), "u8" | "u16" | "i8" | "i16")
        {
            let source_name = match text(si - 1) {
                ")" => {
                    // Scan back to the matching `(`; the callee sits before.
                    let mut depth = 0i32;
                    let mut j = si - 1;
                    let mut name = None;
                    loop {
                        match text(j) {
                            ")" => depth += 1,
                            "(" => {
                                depth -= 1;
                                if depth == 0 {
                                    if j >= 1 && is_ident_text(text(j - 1)) {
                                        name = Some(text(j - 1));
                                    }
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if j == 0 {
                            break;
                        }
                        j -= 1;
                    }
                    name
                }
                prev if is_ident_text(prev) => Some(prev),
                _ => None,
            };
            if let Some(name) = source_name {
                if is_lengthish(name) {
                    diags.push(Diagnostic {
                        path: rel_path.to_string(),
                        line: line_of(src, start(si)),
                        rule: Rule::CastTruncation,
                        message: format!(
                            "narrowing cast `{name} .. as {}` can silently truncate a \
                             length/index; use `{}::try_from` or widen the target type",
                            text(si + 1),
                            text(si + 1)
                        ),
                    });
                }
            }
        }

        // swallowed-result: `let _ = <call chain>;`.
        if t == "let" && si + 2 < sig.len() && text(si + 1) == "_" && text(si + 2) == "=" {
            let mut depth = 0i32;
            let mut last_callee: Option<&str> = None;
            let mut j = si + 3;
            while j < sig.len() {
                match text(j) {
                    "(" => {
                        if depth == 0 && j >= 1 && is_ident_text(text(j - 1)) {
                            last_callee = Some(text(j - 1));
                        }
                        depth += 1;
                    }
                    ")" | "]" | "}" => depth -= 1,
                    "[" | "{" => depth += 1,
                    ";" if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(callee) = last_callee {
                if FALLIBLE_BUILTINS.contains(&callee) || result_fns.contains(callee) {
                    diags.push(Diagnostic {
                        path: rel_path.to_string(),
                        line: line_of(src, start(si)),
                        rule: Rule::SwallowedResult,
                        message: format!(
                            "`let _ =` silently discards the Result of `{callee}`; \
                             handle the error, or bind it to a named `_ignored` with \
                             a comment if dropping it is intentional"
                        ),
                    });
                }
            }
        }

        // atomic-ordering: `Ordering::Relaxed` outside the obs crate.
        // (`::` lexes as two `:` punct tokens.)
        if t == "Relaxed"
            && si >= 3
            && text(si - 1) == ":"
            && text(si - 2) == ":"
            && text(si - 3) == "Ordering"
            && !rel_path.starts_with(CLOCK_CRATE_PREFIX)
        {
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: line_of(src, start(si)),
                rule: Rule::AtomicOrdering,
                message: "bare `Ordering::Relaxed` outside the obs counter hot path; \
                          use Acquire/Release (or route through flixobs counters) so \
                          cross-thread visibility is explicit"
                    .to_string(),
            });
        }
    }
}

/// Flags `pub` items in `src` not preceded by a doc comment.
fn missing_docs(
    rel_path: &str,
    src: &str,
    stripped: &str,
    excluded: &[Region],
    diags: &mut Vec<Diagnostic>,
) {
    let macro_bodies = macro_rules_regions(stripped);
    let raw_lines: Vec<&str> = src.lines().collect();
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let mut offset = 0usize;
    for (idx, sline) in stripped_lines.iter().enumerate() {
        let line_start = offset;
        offset += sline.len() + 1;
        let trimmed = sline.trim_start();
        let Some(kind) = public_item_kind(trimmed) else {
            continue;
        };
        let pos = line_start + (sline.len() - trimmed.len());
        if excluded.iter().any(|r| r.contains(pos)) || macro_bodies.iter().any(|r| r.contains(pos))
        {
            continue;
        }
        if !has_doc_above(&raw_lines, idx) {
            let name = trimmed
                .split_whitespace()
                .find(|tok| {
                    !matches!(
                        *tok,
                        "pub"
                            | "fn"
                            | "struct"
                            | "enum"
                            | "trait"
                            | "const"
                            | "static"
                            | "type"
                            | "mod"
                            | "async"
                            | "unsafe"
                            | "union"
                            | "mut"
                    )
                })
                .unwrap_or("item")
                .trim_end_matches(|c: char| !c.is_alphanumeric() && c != '_');
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: idx + 1,
                rule: Rule::MissingDocs,
                message: format!("public {kind} `{name}` has no doc comment"),
            });
        }
    }
}

/// If `trimmed` begins a public item declaration, returns its kind.
fn public_item_kind(trimmed: &str) -> Option<&'static str> {
    let rest = trimmed.strip_prefix("pub ")?;
    let mut toks = rest.split_whitespace();
    let mut kw = toks.next()?;
    if kw == "async" || kw == "unsafe" {
        kw = toks.next()?;
    }
    match kw {
        "fn" => Some("function"),
        "struct" => Some("struct"),
        "enum" => Some("enum"),
        "trait" => Some("trait"),
        "const" => Some("constant"),
        "static" => Some("static"),
        "type" => Some("type alias"),
        "mod" => Some("module"),
        "union" => Some("union"),
        _ => None,
    }
}

/// True if the lines above `idx` attach a doc comment to the item,
/// looking through attributes and blank lines.
fn has_doc_above(raw_lines: &[&str], idx: usize) -> bool {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with("///") || t.starts_with("#[doc") || t.starts_with("/**") {
            return true;
        }
        // Attribute line, or the tail of a multi-line attribute.
        if t.starts_with("#[") || t.ends_with(']') || t.ends_with(',') {
            continue;
        }
        if t.ends_with("*/") {
            // Tail of a block doc comment: scan back to its opening.
            while j > 0 {
                let o = raw_lines[j].trim_start();
                if o.starts_with("/**") {
                    return true;
                }
                if o.starts_with("/*") {
                    return false;
                }
                j -= 1;
            }
            return false;
        }
        return false;
    }
    false
}

/// Byte ranges of `macro_rules!` bodies (exempt from missing-docs: the
/// tokens inside are patterns, not items).
fn macro_rules_regions(stripped: &str) -> Vec<Region> {
    let bytes = stripped.as_bytes();
    let mut regions = Vec::new();
    for start in find_all(stripped, "macro_rules!") {
        let mut i = start;
        let mut depth = 0i32;
        let mut end = bytes.len();
        while i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        regions.push(Region { start, end });
    }
    regions
}

/// All byte offsets where `pat` occurs in `text`.
fn find_all(text: &str, pat: &str) -> Vec<usize> {
    let mut positions = Vec::new();
    let mut search = 0;
    while let Some(found) = text[search..].find(pat) {
        positions.push(search + found);
        search += found + pat.len();
    }
    positions
}

/// True if the char before `pos` cannot extend an identifier (so `pos`
/// starts a fresh word — `debug_assert!` never matches `assert!` etc.).
fn word_boundary_before(text: &str, pos: usize) -> bool {
    if pos == 0 {
        return true;
    }
    let b = text.as_bytes()[pos - 1];
    !b.is_ascii_alphanumeric() && b != b'_'
}

/// True if `t` begins like an identifier.
fn is_ident_text(t: &str) -> bool {
    t.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// True if `name` denotes a length/index-shaped quantity.
fn is_lengthish(name: &str) -> bool {
    let n = name.trim_end_matches(|c: char| c.is_ascii_digit());
    ["len", "count", "idx", "index", "pos", "offset"]
        .iter()
        .any(|suf| n == *suf || n.ends_with(&format!("_{suf}")) || n.ends_with(suf))
}

/// Collects every production `.rs` file: `crates/*/src/**` (including
/// `src/bin`), the workspace root `src/`, and `examples/`. The root
/// `tests/` tree stays out: integration tests are exempt by design.
fn collect_workspace_sources(root: &Path) -> Result<Vec<PathBuf>, io::Error> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for krate in crates {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    for extra in ["src", "examples"] {
        let dir = root.join(extra);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), io::Error> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Parses `allowlist.txt`: `<rule> <path> <max>` per line, `#` comments.
fn load_allowlist(path: &Path) -> Result<Vec<AllowEntry>, io::Error> {
    let mut entries = Vec::new();
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(e),
    };
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (rule, path, max) = (parts.next(), parts.next(), parts.next());
        let parsed = rule.and_then(Rule::from_allowlist_name).and_then(|r| {
            let p = path?.to_string();
            let m = max?.parse::<usize>().ok()?;
            Some((r, p, m))
        });
        match parsed {
            Some((rule, path, max)) if rule != Rule::Panic => entries.push(AllowEntry {
                rule,
                path,
                max,
                source_line: i + 1,
            }),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "allowlist.txt:{}: malformed entry (want `<rule> <path> <max>`; \
                         `panic` cannot be allowlisted; new rules take inline \
                         suppressions only): {line}",
                        i + 1
                    ),
                ))
            }
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_and_expect_outside_tests() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); }\n\
                   #[cfg(test)]\nmod t { fn g() { z.unwrap(); } }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        let unwraps: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::UnwrapExpect)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert_eq!(unwraps[0].line, 1);
    }

    #[test]
    fn flags_panic_family_with_word_boundaries() {
        let src = "fn f() { panic!(\"x\"); todo!(); unimplemented!(); debug_assert!(true); }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        let panics: Vec<_> = diags.iter().filter(|d| d.rule == Rule::Panic).collect();
        assert_eq!(panics.len(), 3);
    }

    #[test]
    fn ignores_occurrences_in_comments_and_strings() {
        let src = "// call .unwrap() never\nfn f() { let s = \"panic!\"; }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn flags_unsafe_keyword_but_not_unsafe_code_ident() {
        let src = "#![forbid(unsafe_code)]\nfn f() { unsafe { () } }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        let unsafes: Vec<_> = diags.iter().filter(|d| d.rule == Rule::Unsafe).collect();
        assert_eq!(unsafes.len(), 1);
        assert_eq!(unsafes[0].line, 2);
    }

    #[test]
    fn missing_docs_only_in_doc_crates() {
        let src = "pub fn naked() {}\n";
        assert!(lint_file("crates/workloads/src/lib.rs", src)
            .iter()
            .all(|d| d.rule != Rule::MissingDocs));
        let diags = lint_file("crates/flix/src/lib.rs", src);
        assert!(diags.iter().any(|d| d.rule == Rule::MissingDocs));
    }

    #[test]
    fn doc_comment_and_doc_attr_satisfy_missing_docs() {
        let src = "/// Documented.\npub fn a() {}\n\
                   #[doc = \"also documented\"]\npub fn b() {}\n\
                   /// Documented through attributes.\n#[derive(Debug)]\npub struct C;\n";
        let diags = lint_file("crates/flix/src/lib.rs", src);
        assert!(
            diags.iter().all(|d| d.rule != Rule::MissingDocs),
            "{diags:?}"
        );
    }

    #[test]
    fn pub_use_is_not_an_item_declaration() {
        let src = "pub use inner::Thing;\npub(crate) fn helper() {}\n";
        let diags = lint_file("crates/flix/src/lib.rs", src);
        assert!(diags.iter().all(|d| d.rule != Rule::MissingDocs));
    }

    #[test]
    fn instant_now_flagged_outside_the_obs_crate() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let diags = lint_file("crates/flix/src/pee.rs", src);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::InstantNow)
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);
        // The obs crate hosts the sanctioned clock: no finding there.
        assert!(lint_file("crates/obs/src/clock.rs", src)
            .iter()
            .all(|d| d.rule != Rule::InstantNow));
        // Test code may time ad hoc.
        let test_src = "#[cfg(test)]\nmod t { fn g() { let t = Instant::now(); } }\n";
        assert!(lint_file("crates/flix/src/pee.rs", test_src)
            .iter()
            .all(|d| d.rule != Rule::InstantNow));
        // Comments and strings never fire.
        let doc_src = "// Instant::now is banned here\n";
        assert!(lint_file("crates/flix/src/pee.rs", doc_src)
            .iter()
            .all(|d| d.rule != Rule::InstantNow));
    }

    #[test]
    fn system_time_now_flagged_outside_the_obs_crate() {
        let src = "fn f() { let t = std::time::SystemTime::now(); }\n";
        let diags = lint_file("crates/serve/src/server.rs", src);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::InstantNow)
            .collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("SystemTime::now"));
        // The obs crate owns the clocks.
        assert!(lint_file("crates/obs/src/clock.rs", src)
            .iter()
            .all(|d| d.rule != Rule::InstantNow));
        // Test code is exempt, same as Instant::now.
        let test_src = "#[cfg(test)]\nmod t { fn g() { let t = SystemTime::now(); } }\n";
        assert!(lint_file("crates/serve/src/server.rs", test_src)
            .iter()
            .all(|d| d.rule != Rule::InstantNow));
    }

    #[test]
    fn unbounded_channel_construction_is_flagged() {
        let src = "fn f() {\n\
                   let (a, b) = crossbeam::channel::unbounded();\n\
                   let (c, d) = std::sync::mpsc::channel();\n\
                   let (e, g) = crossbeam::channel::bounded(64);\n\
                   }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::UnboundedChannel)
            .collect();
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[1].line, 3);
        // Test code may wire up whatever channels it likes.
        let test_src = "#[cfg(test)]\nmod t { fn g() { let (a, b) = unbounded(); } }\n";
        assert!(lint_file("crates/demo/src/lib.rs", test_src)
            .iter()
            .all(|d| d.rule != Rule::UnboundedChannel));
        // Identifiers that merely end in `unbounded` never fire.
        let ident_src = "fn f() { let x = grow_unbounded(7); }\n";
        assert!(lint_file("crates/demo/src/lib.rs", ident_src)
            .iter()
            .all(|d| d.rule != Rule::UnboundedChannel));
    }

    #[test]
    fn unsynced_write_flagged_outside_the_durability_layer() {
        let src = "fn f() {\n\
                   std::fs::write(\"state.bin\", b\"x\").unwrap();\n\
                   let f = std::fs::File::create(\"log\").unwrap();\n\
                   }\n";
        let diags = lint_file("crates/flix/src/persist.rs", src);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::UnsyncedWrite)
            .collect();
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[1].line, 3);
        // The durability layer pairs every write with its fsync/rename.
        for allowed in [
            "crates/pagestore/src/disk.rs",
            "crates/pagestore/src/wal.rs",
            "crates/pagestore/src/snapshot.rs",
        ] {
            assert!(
                lint_file(allowed, src)
                    .iter()
                    .all(|d| d.rule != Rule::UnsyncedWrite),
                "{allowed} is allowlisted"
            );
        }
        // Test code writes scratch files freely.
        let test_src =
            "#[cfg(test)]\nmod t { fn g() { std::fs::write(\"t\", b\"x\").unwrap(); } }\n";
        assert!(lint_file("crates/flix/src/persist.rs", test_src)
            .iter()
            .all(|d| d.rule != Rule::UnsyncedWrite));
        // A suppression with a reason silences it.
        let suppressed = "fn f() {\n\
             // flixcheck: allow(unsynced-write): scratch artifact\n\
             std::fs::write(\"out.json\", b\"x\").unwrap();\n\
             }\n";
        assert!(lint_file("crates/flix/src/persist.rs", suppressed)
            .iter()
            .all(|d| d.rule != Rule::UnsyncedWrite && d.rule != Rule::Suppression));
    }

    #[test]
    fn diagnostic_format_is_machine_readable() {
        let d = Diagnostic {
            path: "crates/flix/src/pee.rs".to_string(),
            line: 42,
            rule: Rule::UnwrapExpect,
            message: "boom".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "crates/flix/src/pee.rs:42: unwrap-expect: boom"
        );
    }

    // ------------------------------------------------------------------
    // New token rules.

    #[test]
    fn cast_truncation_fires_on_lengthish_narrowing() {
        let src = "fn f(record: &[u8]) -> u16 { record.len() as u16 }\n\
                   fn g(pos_idx: usize) -> u8 { pos_idx as u8 }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::CastTruncation)
            .collect();
        assert_eq!(hits.len(), 2, "{diags:?}");
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 2);
    }

    #[test]
    fn cast_truncation_ignores_wide_targets_and_other_sources() {
        // `len() as u32`/`as u64` is the workspace id idiom; `flags as u8`
        // is not length-shaped.
        let src = "fn f(v: &[u8]) -> u32 { v.len() as u32 }\n\
                   fn g(flags: usize) -> u8 { flags as u8 }\n\
                   fn h(n: usize) -> u64 { n as u64 }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        assert!(
            diags.iter().all(|d| d.rule != Rule::CastTruncation),
            "{diags:?}"
        );
    }

    #[test]
    fn swallowed_result_fires_on_builtins_and_workspace_result_fns() {
        let src = "fn fallible() -> Result<(), E> { Ok(()) }\n\
                   fn f(tx: &Sender<u32>) {\n\
                   let _ = tx.send(1);\n\
                   let _ = fallible();\n\
                   }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::SwallowedResult)
            .collect();
        assert_eq!(hits.len(), 2, "{diags:?}");
        assert_eq!(hits[0].line, 3);
        assert_eq!(hits[1].line, 4);
    }

    #[test]
    fn swallowed_result_ignores_macros_infallible_and_named_bindings() {
        let src = "fn infallible() -> u32 { 7 }\n\
                   fn f(w: &mut W, tx: &Sender<u32>) {\n\
                   let _ = writeln!(w, \"x\");\n\
                   let _ = infallible();\n\
                   let _warm = tx.send(1);\n\
                   let _ = tx.send(1).ok();\n\
                   }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        assert!(
            diags.iter().all(|d| d.rule != Rule::SwallowedResult),
            "{diags:?}"
        );
    }

    #[test]
    fn atomic_ordering_fires_outside_obs_only() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let diags = lint_file("crates/flix/src/cache.rs", src);
        assert!(
            diags.iter().any(|d| d.rule == Rule::AtomicOrdering),
            "{diags:?}"
        );
        assert!(lint_file("crates/obs/src/counter.rs", src)
            .iter()
            .all(|d| d.rule != Rule::AtomicOrdering));
        let acq = "fn f(c: &AtomicU64) { c.load(Ordering::Acquire); }\n";
        assert!(lint_file("crates/flix/src/cache.rs", acq)
            .iter()
            .all(|d| d.rule != Rule::AtomicOrdering));
    }

    // ------------------------------------------------------------------
    // Suppressions.

    #[test]
    fn suppression_with_reason_silences_and_is_marked_used() {
        let src = "fn f(record: &[u8]) -> u16 {\n\
                   // flixcheck: allow(cast-truncation): record len bounded by page size\n\
                   record.len() as u16\n\
                   }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn trailing_same_line_suppression_works() {
        let src = "fn f(v: &[u8]) -> u8 { v.len() as u8 } \
                   // flixcheck: allow(cast-truncation): demo fits in u8\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn suppression_without_reason_is_a_diagnostic() {
        let src = "fn f(record: &[u8]) -> u16 {\n\
                   // flixcheck: allow(cast-truncation)\n\
                   record.len() as u16\n\
                   }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::Suppression && d.message.contains("requires a reason")),
            "{diags:?}"
        );
        // And the underlying finding still fires.
        assert!(diags.iter().any(|d| d.rule == Rule::CastTruncation));
    }

    #[test]
    fn unused_suppression_is_a_diagnostic() {
        let src = "// flixcheck: allow(cast-truncation): nothing here\n\
                   fn f() -> u32 { 7 }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::Suppression && d.message.contains("matched no")),
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_rule_in_suppression_is_a_diagnostic() {
        let src = "// flixcheck: allow(no-such-rule): whatever\nfn f() {}\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::Suppression && d.message.contains("unknown rule")),
            "{diags:?}"
        );
    }

    #[test]
    fn suppression_scopes_to_rule_and_line() {
        // Suppressing cast-truncation does not silence an unrelated rule
        // on the same line.
        let src = "fn f(x: R) {\n\
                   // flixcheck: allow(cast-truncation): wrong rule\n\
                   x.unwrap();\n\
                   }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        assert!(diags.iter().any(|d| d.rule == Rule::UnwrapExpect));
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::Suppression && d.message.contains("matched no")),
            "{diags:?}"
        );
    }

    // ------------------------------------------------------------------
    // Concurrency rules through the full pipeline.

    #[test]
    fn lock_order_cycle_fires_and_suppression_silences_it() {
        let bad = "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                   fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n\
                   fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }\n\
                   }\n";
        let diags = lint_file("crates/demo/src/lib.rs", bad);
        assert!(diags.iter().any(|d| d.rule == Rule::LockOrder), "{diags:?}");

        let suppressed = "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                   fn ab(&self) {\n\
                   let ga = self.a.lock();\n\
                   // flixcheck: allow(blocking-while-locked): startup only, single thread\n\
                   // flixcheck: allow(lock-order): startup only, single thread\n\
                   let gb = self.b.lock();\n\
                   }\n\
                   fn ba(&self) {\n\
                   let gb = self.b.lock();\n\
                   // flixcheck: allow(blocking-while-locked): startup only, single thread\n\
                   // flixcheck: allow(lock-order): startup only, single thread\n\
                   let ga = self.a.lock();\n\
                   }\n\
                   }\n";
        let diags = lint_file("crates/demo/src/lib.rs", suppressed);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn blocking_while_locked_fires_and_suppression_silences_it() {
        let bad = "pub struct S { m: Mutex<u32>, tx: Sender<u32> }\n\
                   impl S {\n\
                   fn f(&self) { let g = self.m.lock(); self.tx.send(1); }\n\
                   }\n";
        let diags = lint_file("crates/demo/src/lib.rs", bad);
        assert!(
            diags.iter().any(|d| d.rule == Rule::BlockingWhileLocked),
            "{diags:?}"
        );

        let ok = "pub struct S { m: Mutex<u32>, tx: Sender<u32> }\n\
                   impl S {\n\
                   fn f(&self) {\n\
                   let g = self.m.lock();\n\
                   // flixcheck: allow(blocking-while-locked): channel has dedicated drainer\n\
                   self.tx.send(1);\n\
                   }\n\
                   }\n";
        let diags = lint_file("crates/demo/src/lib.rs", ok);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
