//! The workspace lint pass.
//!
//! [`run`] walks every `crates/*/src/**/*.rs` file, strips comments and
//! literals (see [`crate::scanner`]), masks `#[cfg(test)]` items, and
//! applies the production-code rules:
//!
//! * `unwrap-expect` — no `.unwrap()` / `.expect(` outside tests.
//!   Grandfathered occurrences live in `crates/flixcheck/allowlist.txt`
//!   as per-file ceilings that may shrink but never grow.
//! * `panic` — no `panic!` / `todo!` / `unimplemented!` in library code.
//!   There is deliberately no allowlist for this rule.
//! * `unsafe` — `unsafe` only where the allowlist explicitly permits it.
//! * `missing-docs` — public items in the `graphcore`, `pagestore`, `obs`,
//!   `flix`, and `serve` crates must carry a doc comment.
//! * `instant-now` — `Instant::now()` only inside the `obs` crate: all
//!   other code must time through `flixobs::Stopwatch`, so measurements
//!   cannot bypass the observability layer.
//! * `unbounded-channel` — no `unbounded()` / `mpsc::channel()` channel
//!   construction outside the allowlist: the serving path must use bounded
//!   queues so overload sheds instead of buffering without limit. The only
//!   grandfathered sites are build-time pipelines that cannot overload.
//!
//! Diagnostics are machine readable: `path:line: rule: message`.

use crate::scanner::{excluded_regions, line_of, strip_source, Region};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose public items must be documented.
const DOC_CRATES: &[&str] = &["graphcore", "pagestore", "obs", "flix", "serve"];

/// The one crate allowed to call `Instant::now()` directly (it hosts
/// `flixobs::Stopwatch`, the sanctioned clock).
const CLOCK_CRATE_PREFIX: &str = "crates/obs/";

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` in non-test library code.
    UnwrapExpect,
    /// `panic!` / `todo!` / `unimplemented!` in library code.
    Panic,
    /// `unsafe` outside the allowlist.
    Unsafe,
    /// Undocumented public item in a documented crate.
    MissingDocs,
    /// `Instant::now()` outside the `obs` crate (use `flixobs::Stopwatch`).
    InstantNow,
    /// `unbounded()` / `mpsc::channel()` channel construction outside the
    /// allowlist (bounded queues only on hot paths).
    UnboundedChannel,
    /// Allowlist entry whose ceiling is higher than reality (or whose
    /// file no longer exists): the ceiling must be lowered.
    AllowlistStale,
}

impl Rule {
    /// The rule's stable name, as used in diagnostics and the allowlist.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnwrapExpect => "unwrap-expect",
            Rule::Panic => "panic",
            Rule::Unsafe => "unsafe",
            Rule::MissingDocs => "missing-docs",
            Rule::InstantNow => "instant-now",
            Rule::UnboundedChannel => "unbounded-channel",
            Rule::AllowlistStale => "allowlist-stale",
        }
    }

    fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unwrap-expect" => Some(Rule::UnwrapExpect),
            "panic" => Some(Rule::Panic),
            "unsafe" => Some(Rule::Unsafe),
            "missing-docs" => Some(Rule::MissingDocs),
            "instant-now" => Some(Rule::InstantNow),
            "unbounded-channel" => Some(Rule::UnboundedChannel),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single lint finding, formatted as `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-indexed line number (0 for file-level findings).
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The outcome of a full lint pass.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True if the pass found no violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// One parsed allowlist entry: at most `max` findings of `rule` in `path`.
#[derive(Debug, Clone)]
struct AllowEntry {
    rule: Rule,
    path: String,
    max: usize,
    /// Line in the allowlist file, for stale-entry diagnostics.
    source_line: usize,
}

/// Locates the workspace root by walking up from `CARGO_MANIFEST_DIR`
/// (set by cargo for both `cargo run` and `cargo test`) or the current
/// directory, whichever first contains `Cargo.toml` and a `crates/` dir.
pub fn find_workspace_root() -> Option<PathBuf> {
    let mut candidates: Vec<PathBuf> = Vec::new();
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        candidates.push(PathBuf::from(dir));
    }
    if let Ok(dir) = std::env::current_dir() {
        candidates.push(dir);
    }
    for start in candidates {
        for dir in start.ancestors() {
            if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
                return Some(dir.to_path_buf());
            }
        }
    }
    None
}

/// Runs the lint pass over the workspace found via [`find_workspace_root`].
pub fn run_default() -> Result<LintReport, io::Error> {
    let root = find_workspace_root().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "workspace root (Cargo.toml + crates/) not found",
        )
    })?;
    run(&root)
}

/// Runs the lint pass over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<LintReport, io::Error> {
    let files = collect_sources(&root.join("crates"))?;
    let allowlist = load_allowlist(&root.join("crates/flixcheck/allowlist.txt"))?;

    // (rule, path) -> occurrences, so allowlist ceilings apply per file.
    let mut found: BTreeMap<(Rule, String), Vec<Diagnostic>> = BTreeMap::new();
    for file in &files {
        let rel = relative_path(root, file);
        let src = fs::read_to_string(file)?;
        for diag in lint_file(&rel, &src) {
            found
                .entry((diag.rule, diag.path.clone()))
                .or_default()
                .push(diag);
        }
    }

    let mut diagnostics = Vec::new();
    for entry in &allowlist {
        let occurrences = found
            .get(&(entry.rule, entry.path.clone()))
            .map_or(0, Vec::len);
        if occurrences < entry.max {
            diagnostics.push(Diagnostic {
                path: "crates/flixcheck/allowlist.txt".to_string(),
                line: entry.source_line,
                rule: Rule::AllowlistStale,
                message: format!(
                    "{} allows {} `{}` findings but only {} remain; lower the ceiling",
                    entry.path, entry.max, entry.rule, occurrences
                ),
            });
        }
    }
    for ((rule, path), occurrences) in found {
        let max = allowlist
            .iter()
            .find(|e| e.rule == rule && e.path == path)
            .map_or(0, |e| e.max);
        let count = occurrences.len();
        if count > max {
            for mut diag in occurrences {
                if max > 0 {
                    diag.message = format!(
                        "{} ({count} found in {path}, {max} grandfathered in allowlist)",
                        diag.message
                    );
                }
                diagnostics.push(diag);
            }
        }
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(LintReport {
        diagnostics,
        files_scanned: files.len(),
    })
}

/// Lints a single file given its workspace-relative path and raw source.
pub fn lint_file(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let stripped = strip_source(src);
    let excluded = excluded_regions(&stripped);
    let mut diags = Vec::new();

    let in_tests = |pos: usize| excluded.iter().any(|r| r.contains(pos));

    for pat in [".unwrap()", ".expect("] {
        for pos in find_all(&stripped, pat) {
            if in_tests(pos) {
                continue;
            }
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: line_of(&stripped, pos),
                rule: Rule::UnwrapExpect,
                message: format!("`{pat}` in non-test library code; propagate a Result instead"),
            });
        }
    }

    for pat in ["panic!", "todo!", "unimplemented!"] {
        for pos in find_all(&stripped, pat) {
            if in_tests(pos) || !word_boundary_before(&stripped, pos) {
                continue;
            }
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: line_of(&stripped, pos),
                rule: Rule::Panic,
                message: format!("`{pat}` in library code; return an error instead"),
            });
        }
    }

    for pos in find_all(&stripped, "unsafe") {
        let after = stripped.as_bytes().get(pos + "unsafe".len());
        let word_end = after.map_or(true, |&b| !b.is_ascii_alphanumeric() && b != b'_');
        if in_tests(pos) || !word_boundary_before(&stripped, pos) || !word_end {
            continue;
        }
        // `forbid(unsafe_code)` / `deny(unsafe_code)` mentions are handled
        // by the word-end check; this is a real `unsafe` keyword.
        diags.push(Diagnostic {
            path: rel_path.to_string(),
            line: line_of(&stripped, pos),
            rule: Rule::Unsafe,
            message: "`unsafe` outside the allowlist".to_string(),
        });
    }

    if !rel_path.starts_with(CLOCK_CRATE_PREFIX) {
        for pos in find_all(&stripped, "Instant::now") {
            if in_tests(pos) {
                continue;
            }
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: line_of(&stripped, pos),
                rule: Rule::InstantNow,
                message: "`Instant::now()` outside the obs crate; time through \
                          `flixobs::Stopwatch` so measurements stay observable"
                    .to_string(),
            });
        }
    }

    for pat in ["unbounded(", "mpsc::channel()"] {
        for pos in find_all(&stripped, pat) {
            if in_tests(pos) || !word_boundary_before(&stripped, pos) {
                continue;
            }
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: line_of(&stripped, pos),
                rule: Rule::UnboundedChannel,
                message: format!(
                    "`{pat}` builds an unbounded channel; use a bounded queue so \
                     overload sheds instead of buffering without limit"
                ),
            });
        }
    }

    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next());
    if crate_name.is_some_and(|c| DOC_CRATES.contains(&c)) {
        missing_docs(rel_path, src, &stripped, &excluded, &mut diags);
    }

    diags
}

/// Flags `pub` items in `src` not preceded by a doc comment.
fn missing_docs(
    rel_path: &str,
    src: &str,
    stripped: &str,
    excluded: &[Region],
    diags: &mut Vec<Diagnostic>,
) {
    let macro_bodies = macro_rules_regions(stripped);
    let raw_lines: Vec<&str> = src.lines().collect();
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let mut offset = 0usize;
    for (idx, sline) in stripped_lines.iter().enumerate() {
        let line_start = offset;
        offset += sline.len() + 1;
        let trimmed = sline.trim_start();
        let Some(kind) = public_item_kind(trimmed) else {
            continue;
        };
        let pos = line_start + (sline.len() - trimmed.len());
        if excluded.iter().any(|r| r.contains(pos)) || macro_bodies.iter().any(|r| r.contains(pos))
        {
            continue;
        }
        if !has_doc_above(&raw_lines, idx) {
            let name = trimmed
                .split_whitespace()
                .find(|tok| {
                    !matches!(
                        *tok,
                        "pub"
                            | "fn"
                            | "struct"
                            | "enum"
                            | "trait"
                            | "const"
                            | "static"
                            | "type"
                            | "mod"
                            | "async"
                            | "unsafe"
                            | "union"
                            | "mut"
                    )
                })
                .unwrap_or("item")
                .trim_end_matches(|c: char| !c.is_alphanumeric() && c != '_');
            diags.push(Diagnostic {
                path: rel_path.to_string(),
                line: idx + 1,
                rule: Rule::MissingDocs,
                message: format!("public {kind} `{name}` has no doc comment"),
            });
        }
    }
}

/// If `trimmed` begins a public item declaration, returns its kind.
fn public_item_kind(trimmed: &str) -> Option<&'static str> {
    let rest = trimmed.strip_prefix("pub ")?;
    let mut toks = rest.split_whitespace();
    let mut kw = toks.next()?;
    if kw == "async" || kw == "unsafe" {
        kw = toks.next()?;
    }
    match kw {
        "fn" => Some("function"),
        "struct" => Some("struct"),
        "enum" => Some("enum"),
        "trait" => Some("trait"),
        "const" => Some("constant"),
        "static" => Some("static"),
        "type" => Some("type alias"),
        "mod" => Some("module"),
        "union" => Some("union"),
        _ => None,
    }
}

/// True if the lines above `idx` attach a doc comment to the item,
/// looking through attributes and blank lines.
fn has_doc_above(raw_lines: &[&str], idx: usize) -> bool {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with("///") || t.starts_with("#[doc") || t.starts_with("/**") {
            return true;
        }
        // Attribute line, or the tail of a multi-line attribute.
        if t.starts_with("#[") || t.ends_with(']') || t.ends_with(',') {
            continue;
        }
        if t.ends_with("*/") {
            // Tail of a block doc comment: scan back to its opening.
            while j > 0 {
                let o = raw_lines[j].trim_start();
                if o.starts_with("/**") {
                    return true;
                }
                if o.starts_with("/*") {
                    return false;
                }
                j -= 1;
            }
            return false;
        }
        return false;
    }
    false
}

/// Byte ranges of `macro_rules!` bodies (exempt from missing-docs: the
/// tokens inside are patterns, not items).
fn macro_rules_regions(stripped: &str) -> Vec<Region> {
    let bytes = stripped.as_bytes();
    let mut regions = Vec::new();
    for start in find_all(stripped, "macro_rules!") {
        let mut i = start;
        let mut depth = 0i32;
        let mut end = bytes.len();
        while i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        regions.push(Region { start, end });
    }
    regions
}

/// All byte offsets where `pat` occurs in `text`.
fn find_all(text: &str, pat: &str) -> Vec<usize> {
    let mut positions = Vec::new();
    let mut search = 0;
    while let Some(found) = text[search..].find(pat) {
        positions.push(search + found);
        search += found + pat.len();
    }
    positions
}

/// True if the char before `pos` cannot extend an identifier (so `pos`
/// starts a fresh word — `debug_assert!` never matches `assert!` etc.).
fn word_boundary_before(text: &str, pos: usize) -> bool {
    if pos == 0 {
        return true;
    }
    let b = text.as_bytes()[pos - 1];
    !b.is_ascii_alphanumeric() && b != b'_'
}

/// Recursively collects `*/src/**/*.rs` under `crates_dir`, sorted.
fn collect_sources(crates_dir: &Path) -> Result<Vec<PathBuf>, io::Error> {
    let mut files = Vec::new();
    let mut crates: Vec<PathBuf> = fs::read_dir(crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    for krate in crates {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), io::Error> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Parses `allowlist.txt`: `<rule> <path> <max>` per line, `#` comments.
fn load_allowlist(path: &Path) -> Result<Vec<AllowEntry>, io::Error> {
    let mut entries = Vec::new();
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(e),
    };
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (rule, path, max) = (parts.next(), parts.next(), parts.next());
        let parsed = rule.and_then(Rule::from_name).and_then(|r| {
            let p = path?.to_string();
            let m = max?.parse::<usize>().ok()?;
            Some((r, p, m))
        });
        match parsed {
            Some((rule, path, max)) if rule != Rule::Panic => entries.push(AllowEntry {
                rule,
                path,
                max,
                source_line: i + 1,
            }),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "allowlist.txt:{}: malformed entry (want `<rule> <path> <max>`; \
                         `panic` cannot be allowlisted): {line}",
                        i + 1
                    ),
                ))
            }
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_and_expect_outside_tests() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); }\n\
                   #[cfg(test)]\nmod t { fn g() { z.unwrap(); } }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        let unwraps: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::UnwrapExpect)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert_eq!(unwraps[0].line, 1);
    }

    #[test]
    fn flags_panic_family_with_word_boundaries() {
        let src = "fn f() { panic!(\"x\"); todo!(); unimplemented!(); debug_assert!(true); }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        let panics: Vec<_> = diags.iter().filter(|d| d.rule == Rule::Panic).collect();
        assert_eq!(panics.len(), 3);
    }

    #[test]
    fn ignores_occurrences_in_comments_and_strings() {
        let src = "// call .unwrap() never\nfn f() { let s = \"panic!\"; }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn flags_unsafe_keyword_but_not_unsafe_code_ident() {
        let src = "#![forbid(unsafe_code)]\nfn f() { unsafe { () } }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        let unsafes: Vec<_> = diags.iter().filter(|d| d.rule == Rule::Unsafe).collect();
        assert_eq!(unsafes.len(), 1);
        assert_eq!(unsafes[0].line, 2);
    }

    #[test]
    fn missing_docs_only_in_doc_crates() {
        let src = "pub fn naked() {}\n";
        assert!(lint_file("crates/workloads/src/lib.rs", src)
            .iter()
            .all(|d| d.rule != Rule::MissingDocs));
        let diags = lint_file("crates/flix/src/lib.rs", src);
        assert!(diags.iter().any(|d| d.rule == Rule::MissingDocs));
    }

    #[test]
    fn doc_comment_and_doc_attr_satisfy_missing_docs() {
        let src = "/// Documented.\npub fn a() {}\n\
                   #[doc = \"also documented\"]\npub fn b() {}\n\
                   /// Documented through attributes.\n#[derive(Debug)]\npub struct C;\n";
        let diags = lint_file("crates/flix/src/lib.rs", src);
        assert!(
            diags.iter().all(|d| d.rule != Rule::MissingDocs),
            "{diags:?}"
        );
    }

    #[test]
    fn pub_use_is_not_an_item_declaration() {
        let src = "pub use inner::Thing;\npub(crate) fn helper() {}\n";
        let diags = lint_file("crates/flix/src/lib.rs", src);
        assert!(diags.iter().all(|d| d.rule != Rule::MissingDocs));
    }

    #[test]
    fn instant_now_flagged_outside_the_obs_crate() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let diags = lint_file("crates/flix/src/pee.rs", src);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::InstantNow)
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);
        // The obs crate hosts the sanctioned clock: no finding there.
        assert!(lint_file("crates/obs/src/clock.rs", src)
            .iter()
            .all(|d| d.rule != Rule::InstantNow));
        // Test code may time ad hoc.
        let test_src = "#[cfg(test)]\nmod t { fn g() { let t = Instant::now(); } }\n";
        assert!(lint_file("crates/flix/src/pee.rs", test_src)
            .iter()
            .all(|d| d.rule != Rule::InstantNow));
        // Comments and strings never fire.
        let doc_src = "// Instant::now is banned here\n";
        assert!(lint_file("crates/flix/src/pee.rs", doc_src)
            .iter()
            .all(|d| d.rule != Rule::InstantNow));
    }

    #[test]
    fn unbounded_channel_construction_is_flagged() {
        let src = "fn f() {\n\
                   let (a, b) = crossbeam::channel::unbounded();\n\
                   let (c, d) = std::sync::mpsc::channel();\n\
                   let (e, g) = crossbeam::channel::bounded(64);\n\
                   }\n";
        let diags = lint_file("crates/demo/src/lib.rs", src);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::UnboundedChannel)
            .collect();
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[1].line, 3);
        // Test code may wire up whatever channels it likes.
        let test_src = "#[cfg(test)]\nmod t { fn g() { let (a, b) = unbounded(); } }\n";
        assert!(lint_file("crates/demo/src/lib.rs", test_src)
            .iter()
            .all(|d| d.rule != Rule::UnboundedChannel));
        // Identifiers that merely end in `unbounded` never fire.
        let ident_src = "fn f() { let x = grow_unbounded(7); }\n";
        assert!(lint_file("crates/demo/src/lib.rs", ident_src)
            .iter()
            .all(|d| d.rule != Rule::UnboundedChannel));
    }

    #[test]
    fn diagnostic_format_is_machine_readable() {
        let d = Diagnostic {
            path: "crates/flix/src/pee.rs".to_string(),
            line: 42,
            rule: Rule::UnwrapExpect,
            message: "boom".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "crates/flix/src/pee.rs:42: unwrap-expect: boom"
        );
    }
}
