//! A from-scratch Rust lexer.
//!
//! [`lex`] splits a source file into a complete token stream: every byte of
//! the input belongs to exactly one token, so concatenating the token texts
//! reproduces the file. The lint rules that need structure (the parser in
//! [`crate::parse`], the concurrency extractor in [`crate::conc`], and the
//! token-pattern rules in [`crate::lint`]) all work on this stream; the
//! legacy [`crate::scanner`] strip-and-scan view is kept for the simple
//! substring rules and is proven equivalent to [`stripped_view`] by a
//! property suite in `tests/static_analysis.rs`.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers `r#type`).
    Ident,
    /// A lifetime or loop label: `'a`, `'outer`.
    Lifetime,
    /// Integer or float literal, including suffixes (`42u32`, `1.5e-3`).
    Num,
    /// `"..."` string literal.
    Str,
    /// `r"..."` / `r#"..."#` raw string literal.
    RawStr,
    /// `b"..."` byte-string literal.
    ByteStr,
    /// `br"..."` / `br#"..."#` raw byte-string literal.
    RawByteStr,
    /// `'x'` char literal (including escapes).
    Char,
    /// `b'x'` byte literal.
    Byte,
    /// `// ...` comment; `doc` is true for `///` and `//!`.
    LineComment {
        /// True for `///` and `//!` doc comments.
        doc: bool,
    },
    /// `/* ... */` comment (nesting handled); `doc` is true for `/**`, `/*!`.
    BlockComment {
        /// True for `/**` and `/*!` doc comments.
        doc: bool,
    },
    /// A single punctuation byte (`.`, `:`, `{`, ...).
    Punct,
    /// A run of whitespace.
    Ws,
}

/// One token: a kind plus the byte range it covers in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token kind.
    pub kind: TokKind,
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// True for tokens the parser skips (whitespace and comments).
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokKind::Ws | TokKind::LineComment { .. } | TokKind::BlockComment { .. }
        )
    }
}

/// Lexes `src` into a complete token stream covering every byte.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let kind = match bytes[i] {
            b if b.is_ascii_whitespace() => {
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                TokKind::Ws
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let doc = (bytes.get(i + 2) == Some(&b'/') && bytes.get(i + 3) != Some(&b'/'))
                    || bytes.get(i + 2) == Some(&b'!');
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                TokKind::LineComment { doc }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let doc = (bytes.get(i + 2) == Some(&b'*') && bytes.get(i + 3) != Some(&b'*'))
                    || bytes.get(i + 2) == Some(&b'!');
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                TokKind::BlockComment { doc }
            }
            b'r' | b'b' if raw_string_start(bytes, i) => {
                let byte_str = bytes[i] == b'b';
                i = skip_raw_string(bytes, i);
                if byte_str {
                    TokKind::RawByteStr
                } else {
                    TokKind::RawStr
                }
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                i = skip_plain_string(bytes, i + 1);
                TokKind::ByteStr
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                i = skip_char_literal(bytes, i + 1);
                TokKind::Byte
            }
            b'r' if bytes.get(i + 1) == Some(&b'#')
                && is_ident_start(bytes.get(i + 2).copied()) =>
            {
                // Raw identifier `r#type`.
                i += 2;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                TokKind::Ident
            }
            b'"' => {
                i = skip_plain_string(bytes, i);
                TokKind::Str
            }
            b'\'' => match classify_quote(bytes, i) {
                Quote::Char => {
                    i = skip_char_literal(bytes, i);
                    TokKind::Char
                }
                Quote::Lifetime => {
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    TokKind::Lifetime
                }
                Quote::Lone => {
                    i += 1;
                    TokKind::Punct
                }
            },
            b if b.is_ascii_digit() => {
                i = skip_number(bytes, i);
                TokKind::Num
            }
            b if is_ident_start(Some(b)) => {
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                TokKind::Ident
            }
            _ => {
                // Single punctuation byte; multi-byte UTF-8 sequences outside
                // identifiers/strings are consumed whole so token boundaries
                // stay on char boundaries.
                let len = utf8_len(bytes[i]);
                i += len;
                TokKind::Punct
            }
        };
        // A truncated escape at EOF (`"a\`) can step past the end; clamp so
        // token ranges always index into the source.
        i = i.min(bytes.len());
        debug_assert!(i > start, "lexer must make progress");
        tokens.push(Token {
            kind,
            start,
            end: i,
        });
    }
    tokens
}

/// The stripped view of `src` built from its token stream: comments and
/// string/char/byte literals become spaces (newlines preserved), all other
/// tokens are copied through. Byte-for-byte identical layout to the input,
/// and — for the well-formed sources the lint walks — identical to the
/// legacy [`crate::scanner::strip_source`] output.
pub fn stripped_view(src: &str, tokens: &[Token]) -> String {
    let bytes = src.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    for tok in tokens {
        let blank = matches!(
            tok.kind,
            TokKind::Str
                | TokKind::RawStr
                | TokKind::ByteStr
                | TokKind::RawByteStr
                | TokKind::Char
                | TokKind::Byte
                | TokKind::LineComment { .. }
                | TokKind::BlockComment { .. }
        );
        for idx in tok.start..tok.end {
            out[idx] = if blank && bytes[idx] != b'\n' {
                b' '
            } else {
                bytes[idx]
            };
        }
    }
    // Token boundaries are always UTF-8 char boundaries and blanked bytes
    // are ASCII, so the output is valid UTF-8.
    String::from_utf8(out).unwrap_or_default()
}

/// How a `'` at some position should be read.
enum Quote {
    Char,
    Lifetime,
    Lone,
}

/// Decides whether the `'` at `i` starts a char literal or a lifetime.
fn classify_quote(bytes: &[u8], i: usize) -> Quote {
    match bytes.get(i + 1) {
        None => Quote::Lone,
        Some(&b'\\') => Quote::Char,
        Some(&b) => {
            let ch_len = utf8_len(b);
            if bytes.get(i + 1 + ch_len) == Some(&b'\'') {
                Quote::Char
            } else if is_ident_start(Some(b)) || b >= 0x80 {
                Quote::Lifetime
            } else {
                Quote::Lone
            }
        }
    }
}

/// Skips a char/byte literal starting at the opening `'` at `i`; returns
/// the index just past the closing quote. Handles `'\''`, `'\\'`, and
/// multi-char escapes like `'\u{1F600}'`.
fn skip_char_literal(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    if bytes.get(i) == Some(&b'\\') {
        // The byte after the backslash is escaped: consume both, then scan
        // for the closing quote (covers \x41 and \u{...} tails).
        i += 2;
        while i < bytes.len() {
            match bytes[i] {
                b'\'' => return i + 1,
                b'\\' => i += 2,
                b'\n' => return i, // unterminated; don't cross lines
                _ => i += 1,
            }
        }
        i
    } else {
        // One (possibly multi-byte) char, then the closing quote.
        if i < bytes.len() {
            i += utf8_len(bytes[i]);
        }
        if bytes.get(i) == Some(&b'\'') {
            i + 1
        } else {
            i
        }
    }
}

/// True if `bytes[i..]` starts a raw (byte) string: `r"`, `r#...#"`, `br"`.
fn raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Skips a raw string starting at `i` (at the `r` or `b`), returning the
/// index just past the closing quote-and-hashes.
fn skip_raw_string(bytes: &[u8], mut i: usize) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // the `r`
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut k = 0;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Skips a plain `"..."` string with `\` escapes, starting at the quote.
fn skip_plain_string(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a numeric literal (int or float, any base, suffixes) at `i`.
fn skip_number(bytes: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    // Fractional part: a `.` followed by a digit (never `..`, a range).
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        // Signed exponent (`1.5e-3`): the sign follows an `e`/`E`.
        if i < bytes.len()
            && (bytes[i] == b'+' || bytes[i] == b'-')
            && bytes.get(i - 1).is_some_and(|&b| b == b'e' || b == b'E')
        {
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    } else if i < bytes.len()
        && (bytes[i] == b'+' || bytes[i] == b'-')
        && bytes.get(i - 1).is_some_and(|&b| b == b'e' || b == b'E')
        && bytes[..i]
            .iter()
            .rev()
            .skip(1)
            .take_while(|b| b.is_ascii_alphanumeric())
            .all(|b| b.is_ascii_digit() || *b == b'e' || *b == b'E')
    {
        // `1e-3` without a fractional part.
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    i
}

/// True if `b` can start an identifier.
fn is_ident_start(b: Option<u8>) -> bool {
    b.is_some_and(|b| b.is_ascii_alphabetic() || b == b'_' || b >= 0x80)
}

/// True if `b` can continue an identifier.
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte length of the UTF-8 sequence starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ if b >= 0xf0 => 4,
        // Continuation byte on its own (invalid UTF-8): consume one.
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokens_cover_every_byte() {
        let src = "fn f<'a>(x: &'a str) -> u32 { x.len() as u32 /* c */ } // t\n";
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before {t:?}");
            pos = t.end;
        }
        assert_eq!(pos, src.len());
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'de>(c: char) { let x = 'a'; let y: &'de str = s; }";
        let toks = lex(src);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text(src), "'a'");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'de", "'de"]);
    }

    #[test]
    fn escaped_quote_char_literals() {
        for (src, expect) in [
            (r"let q = '\'';", r"'\''"),
            (r"let b = '\\';", r"'\\'"),
            ("let u = '\\u{1F600}';", "'\\u{1F600}'"),
            (r"let t = b'\'';", r"b'\''"),
        ] {
            let toks = lex(src);
            let lit = toks
                .iter()
                .find(|t| matches!(t.kind, TokKind::Char | TokKind::Byte))
                .unwrap_or_else(|| panic!("no char literal lexed in {src}"));
            assert_eq!(lit.text(src), expect, "in {src}");
            // The trailing `;` must survive as punctuation.
            assert!(
                toks.iter()
                    .any(|t| t.kind == TokKind::Punct && t.text(src) == ";"),
                "semicolon lost in {src}"
            );
        }
    }

    #[test]
    fn raw_strings_with_many_hashes() {
        let src = r####"let a = r#"x " quote"#; let b = r##"y "# z"##;"####;
        let toks = lex(src);
        let raws: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::RawStr)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(
            raws,
            vec![r####"r#"x " quote"#"####, r####"r##"y "# z"##"####]
        );
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let src = "let r#type = 1; let rate = r#type;";
        let toks = lex(src);
        assert!(toks.iter().all(|t| t.kind != TokKind::RawStr));
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert!(idents.contains(&"r#type"));
        assert!(idents.contains(&"rate"));
    }

    #[test]
    fn nested_block_comments_and_doc_flags() {
        let src = "/* a /* b */ c */ /// doc\n//! inner\n//// not doc\n/** block doc */";
        let toks: Vec<_> = lex(src);
        let comments: Vec<_> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::LineComment { doc } => Some(("line", doc)),
                TokKind::BlockComment { doc } => Some(("block", doc)),
                _ => None,
            })
            .collect();
        assert_eq!(
            comments,
            vec![
                ("block", false),
                ("line", true),
                ("line", true),
                ("line", false),
                ("block", true),
            ]
        );
    }

    #[test]
    fn numbers_with_suffixes_and_floats() {
        let src = "let a = 42u32 + 0xff_u8 + 1.5e-3 + 1e9 + x[0..n];";
        let toks = lex(src);
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(nums, vec!["42u32", "0xff_u8", "1.5e-3", "1e9", "0"]);
        assert_eq!(kinds("0..n").len(), 4); // 0, ., ., n
    }

    #[test]
    fn stripped_view_blanks_literals_and_comments() {
        let src = "let s = \".unwrap()\"; // panic!\nlet c = 'x'; let r = r#\"todo!\"#;";
        let view = stripped_view(src, &lex(src));
        assert_eq!(view.len(), src.len());
        assert!(!view.contains("unwrap"));
        assert!(!view.contains("panic"));
        assert!(!view.contains("todo"));
        assert!(view.contains("let s ="));
        assert!(view.contains('\n'));
    }
}
