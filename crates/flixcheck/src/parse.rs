//! A lightweight Rust item parser on top of [`crate::lex`].
//!
//! This is not a full grammar: it recognises exactly the structure the
//! analysis passes need — `struct` fields (to find lock declarations),
//! `static` items, `impl` blocks (to resolve `self.field`), and `fn`
//! items with their body token ranges and test-ness (`#[cfg(test)]` /
//! `#[test]`), tracking brace depth so nothing inside a body is mistaken
//! for an item. Everything it cannot classify is skipped, never an error:
//! the linter must degrade gracefully on code it does not understand.

use crate::lex::{lex, Token};
use crate::scanner::Region;

/// A `Mutex`/`RwLock` kind, for lock-class bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `std::sync::Mutex` or `parking_lot::Mutex`.
    Mutex,
    /// `std::sync::RwLock` or `parking_lot::RwLock`.
    RwLock,
}

/// A struct field whose type embeds a lock.
#[derive(Debug, Clone)]
pub struct LockField {
    /// Name of the struct declaring the field.
    pub struct_name: String,
    /// The field name.
    pub field: String,
    /// Mutex or RwLock.
    pub kind: LockKind,
    /// 1-indexed declaration line.
    pub line: usize,
}

/// A `static` item whose type embeds a lock.
#[derive(Debug, Clone)]
pub struct LockStatic {
    /// The static's name.
    pub name: String,
    /// Mutex or RwLock.
    pub kind: LockKind,
    /// 1-indexed declaration line.
    pub line: usize,
}

/// A function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// Enclosing `impl` type, if the fn sits in an impl block.
    pub impl_type: Option<String>,
    /// Token-index range (into the parse's token vec) of the body,
    /// including the outer braces. `None` for trait-method signatures.
    pub body: Option<(usize, usize)>,
    /// True if the fn (or an enclosing item) is test-only.
    pub in_test: bool,
    /// True if the declared return type mentions `Result`.
    pub returns_result: bool,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
}

/// The parsed view of one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Lock-typed struct fields declared in this file.
    pub lock_fields: Vec<LockField>,
    /// Lock-typed statics declared in this file.
    pub lock_statics: Vec<LockStatic>,
    /// Every `fn` item found.
    pub fns: Vec<FnItem>,
    /// Byte regions covered by `#[cfg(test)]` items or `#[test]` fns.
    pub test_regions: Vec<Region>,
}

impl ParsedFile {
    /// True if byte offset `pos` falls in test-only code.
    pub fn in_test(&self, pos: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(pos))
    }
}

/// Parses `src`, reusing an already-lexed token stream.
///
/// `tokens` must be the output of [`lex`] on the same `src`.
pub fn parse(src: &str, tokens: &[Token]) -> ParsedFile {
    Parser {
        src,
        tokens,
        sig: significant(tokens),
        out: ParsedFile::default(),
    }
    .run()
}

/// Convenience: lex and parse in one call.
pub fn parse_source(src: &str) -> (Vec<Token>, ParsedFile) {
    let tokens = lex(src);
    let parsed = parse(src, &tokens);
    (tokens, parsed)
}

/// Indices of non-trivia tokens.
fn significant(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_trivia())
        .map(|(i, _)| i)
        .collect()
}

struct Parser<'s> {
    src: &'s str,
    tokens: &'s [Token],
    /// Indices into `tokens` of the significant (non-trivia) tokens.
    sig: Vec<usize>,
    out: ParsedFile,
}

/// One pending attribute: its text and start offset.
struct Attr {
    text: String,
    start: usize,
}

impl<'s> Parser<'s> {
    fn run(mut self) -> ParsedFile {
        let len = self.sig.len();
        let mut cursor = 0usize;
        self.items(&mut cursor, len, None, false);
        self.out
    }

    fn text(&self, sig_idx: usize) -> &'s str {
        self.tokens[self.sig[sig_idx]].text(self.src)
    }

    fn start(&self, sig_idx: usize) -> usize {
        self.tokens[self.sig[sig_idx]].start
    }

    fn line(&self, sig_idx: usize) -> usize {
        crate::scanner::line_of(self.src, self.start(sig_idx))
    }

    /// Parses a run of items until `end` (significant-token index),
    /// inside `impl_type` context, with `in_test` inherited.
    fn items(&mut self, cursor: &mut usize, end: usize, impl_type: Option<&str>, in_test: bool) {
        let mut attrs: Vec<Attr> = Vec::new();
        while *cursor < end {
            let t = self.text(*cursor);
            match t {
                "#" => {
                    let start = self.start(*cursor);
                    let text = self.attr_text(cursor, end);
                    attrs.push(Attr { text, start });
                }
                "struct" => {
                    let item_test = in_test || attrs_mark_test(&attrs);
                    let item_start = attrs.first().map_or(self.start(*cursor), |a| a.start);
                    self.struct_item(cursor, end);
                    self.close_test_region(item_test, in_test, item_start, *cursor);
                    attrs.clear();
                }
                "impl" => {
                    let item_test = in_test || attrs_mark_test(&attrs);
                    let item_start = attrs.first().map_or(self.start(*cursor), |a| a.start);
                    self.impl_item(cursor, end, item_test);
                    self.close_test_region(item_test, in_test, item_start, *cursor);
                    attrs.clear();
                }
                "fn" => {
                    let item_test = in_test || attrs_mark_test(&attrs);
                    let item_start = attrs.first().map_or(self.start(*cursor), |a| a.start);
                    self.fn_item(cursor, end, impl_type, item_test);
                    self.close_test_region(item_test, in_test, item_start, *cursor);
                    attrs.clear();
                }
                "static" | "const" => {
                    self.static_item(cursor, end, t == "static");
                    attrs.clear();
                }
                "mod" | "trait" => {
                    // `mod name { items }` / `trait T { sigs }`: recurse into
                    // the braces with the same impl context cleared.
                    let item_test = in_test || attrs_mark_test(&attrs);
                    let item_start = attrs.first().map_or(self.start(*cursor), |a| a.start);
                    *cursor += 1;
                    self.skip_to_body_or_semi(cursor, end);
                    if *cursor < end && self.text(*cursor) == "{" {
                        let body_end = self.matching_brace(*cursor, end);
                        *cursor += 1;
                        self.items(cursor, body_end, None, item_test);
                        *cursor = (body_end + 1).min(end);
                    }
                    self.close_test_region(item_test, in_test, item_start, *cursor);
                    attrs.clear();
                }
                "{" => {
                    // A stray block at item level: skip it wholesale.
                    *cursor = (self.matching_brace(*cursor, end) + 1).min(end);
                    attrs.clear();
                }
                _ => {
                    *cursor += 1;
                    if !matches!(t, "pub" | "async" | "unsafe" | "extern" | "default") {
                        attrs.clear();
                    }
                }
            }
        }
    }

    /// Records a test region if this item is test-only but its parent scope
    /// is not (so nested items don't produce duplicate regions).
    fn close_test_region(
        &mut self,
        item_test: bool,
        parent_test: bool,
        start: usize,
        cursor: usize,
    ) {
        if item_test && !parent_test {
            let end = if cursor == 0 {
                self.src.len()
            } else if cursor <= self.sig.len() {
                // End of the last consumed token.
                self.sig
                    .get(cursor.saturating_sub(1))
                    .map_or(self.src.len(), |&ti| self.tokens[ti].end)
            } else {
                self.src.len()
            };
            self.out.test_regions.push(Region { start, end });
        }
    }

    /// Consumes `# [ ... ]` returning the bracketed text.
    fn attr_text(&self, cursor: &mut usize, end: usize) -> String {
        *cursor += 1; // the `#`
        if *cursor < end && self.text(*cursor) == "!" {
            *cursor += 1;
        }
        let mut out = String::new();
        if *cursor < end && self.text(*cursor) == "[" {
            let mut depth = 0usize;
            while *cursor < end {
                let t = self.text(*cursor);
                if t == "[" {
                    depth += 1;
                    *cursor += 1;
                    if depth > 1 {
                        out.push_str(t);
                    }
                    continue;
                }
                if t == "]" {
                    depth -= 1;
                    *cursor += 1;
                    if depth == 0 {
                        break;
                    }
                    out.push_str(t);
                    continue;
                }
                out.push_str(t);
                *cursor += 1;
            }
        }
        out
    }

    /// Parses `struct Name { fields }` (or tuple/unit structs), recording
    /// lock-typed fields.
    fn struct_item(&mut self, cursor: &mut usize, end: usize) {
        *cursor += 1; // `struct`
        if *cursor >= end {
            return;
        }
        let name = self.text(*cursor).to_string();
        *cursor += 1;
        self.skip_to_body_or_semi(cursor, end);
        if *cursor >= end || self.text(*cursor) != "{" {
            // Tuple or unit struct: already positioned at `(`/`;`; skip on.
            while *cursor < end && self.text(*cursor) != ";" {
                *cursor += 1;
            }
            *cursor = (*cursor + 1).min(end);
            return;
        }
        let body_end = self.matching_brace(*cursor, end);
        let mut i = *cursor + 1;
        // Fields: [attrs] [pub[(..)]] name : Type ,
        while i < body_end {
            let t = self.text(i);
            if t == "#" {
                let mut c = i;
                self.attr_text(&mut c, body_end);
                i = c;
                continue;
            }
            if t == "pub" {
                i += 1;
                if i < body_end && self.text(i) == "(" {
                    i = self.matching(i, body_end, "(", ")") + 1;
                }
                continue;
            }
            // Expect `name :`.
            if i + 1 < body_end && self.text(i + 1) == ":" && is_ident(t) {
                let field = t.to_string();
                let line = self.line(i);
                let mut j = i + 2;
                let mut ty = String::new();
                let mut depth = 0i32;
                while j < body_end {
                    let tt = self.text(j);
                    match tt {
                        "<" | "(" | "[" => depth += 1,
                        ">" | ")" | "]" => depth -= 1,
                        "," if depth <= 0 => break,
                        _ => {}
                    }
                    ty.push_str(tt);
                    ty.push(' ');
                    j += 1;
                }
                if let Some(kind) = lock_kind_of(&ty) {
                    self.out.lock_fields.push(LockField {
                        struct_name: name.clone(),
                        field,
                        kind,
                        line,
                    });
                }
                i = (j + 1).min(body_end);
            } else {
                i += 1;
            }
        }
        *cursor = (body_end + 1).min(end);
    }

    /// Parses `static NAME: Type = ...;` recording lock-typed statics;
    /// `const` items are skipped the same way without recording.
    fn static_item(&mut self, cursor: &mut usize, end: usize, record: bool) {
        *cursor += 1; // `static` / `const`
        if *cursor < end && self.text(*cursor) == "mut" {
            *cursor += 1;
        }
        if *cursor >= end {
            return;
        }
        let name = self.text(*cursor).to_string();
        let line = self.line(*cursor);
        *cursor += 1;
        let mut ty = String::new();
        if *cursor < end && self.text(*cursor) == ":" {
            *cursor += 1;
            let mut depth = 0i32;
            while *cursor < end {
                let t = self.text(*cursor);
                match t {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "=" | ";" if depth <= 0 => break,
                    _ => {}
                }
                ty.push_str(t);
                ty.push(' ');
                *cursor += 1;
            }
        }
        while *cursor < end && self.text(*cursor) != ";" {
            // Initializer expressions can contain braces (e.g. closures):
            // skip balanced groups wholesale.
            if self.text(*cursor) == "{" {
                *cursor = self.matching_brace(*cursor, end);
            }
            *cursor += 1;
        }
        *cursor = (*cursor + 1).min(end);
        if record {
            if let Some(kind) = lock_kind_of(&ty) {
                self.out.lock_statics.push(LockStatic { name, kind, line });
            }
        }
    }

    /// Parses `impl [<..>] Type [for Type] { items }`.
    fn impl_item(&mut self, cursor: &mut usize, end: usize, in_test: bool) {
        *cursor += 1; // `impl`
                      // Collect header tokens until the body `{` (or `;`), tracking the
                      // last path segment seen and whether a `for` occurred: for trait
                      // impls the *implementing* type follows `for`.
        let mut last_seg: Option<String> = None;
        let mut depth = 0i32;
        let mut in_where = false;
        while *cursor < end {
            let t = self.text(*cursor);
            match t {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                "{" if depth <= 0 => break,
                ";" if depth <= 0 => {
                    *cursor += 1;
                    return;
                }
                "for" if depth <= 0 => last_seg = None,
                "where" if depth <= 0 => in_where = true,
                _ if depth <= 0 && !in_where && is_ident(t) && t != "dyn" => {
                    last_seg = Some(t.to_string());
                }
                _ => {}
            }
            *cursor += 1;
        }
        if *cursor >= end {
            return;
        }
        let body_end = self.matching_brace(*cursor, end);
        *cursor += 1;
        let ty = last_seg;
        self.items(cursor, body_end, ty.as_deref(), in_test);
        *cursor = (body_end + 1).min(end);
    }

    /// Parses `fn name(..) -> Ret { body }`, recording the item.
    fn fn_item(&mut self, cursor: &mut usize, end: usize, impl_type: Option<&str>, in_test: bool) {
        let fn_line = self.line(*cursor);
        *cursor += 1; // `fn`
        if *cursor >= end {
            return;
        }
        let name = self.text(*cursor).to_string();
        *cursor += 1;
        // Generics.
        if *cursor < end && self.text(*cursor) == "<" {
            *cursor = self.matching_angles(*cursor, end) + 1;
        }
        // Parameters.
        if *cursor < end && self.text(*cursor) == "(" {
            *cursor = self.matching(*cursor, end, "(", ")") + 1;
        }
        // Return type / where clause, up to `{` or `;`.
        let mut returns_result = false;
        let mut saw_arrow = false;
        let mut in_where = false;
        while *cursor < end {
            let t = self.text(*cursor);
            if t == "{" {
                break;
            }
            if t == ";" {
                *cursor += 1;
                self.out.fns.push(FnItem {
                    name,
                    impl_type: impl_type.map(str::to_string),
                    body: None,
                    in_test,
                    returns_result,
                    line: fn_line,
                });
                return;
            }
            if t == "where" {
                in_where = true;
            }
            if t == "-" && *cursor + 1 < end && self.text(*cursor + 1) == ">" {
                saw_arrow = true;
            }
            if saw_arrow && !in_where && t == "Result" {
                returns_result = true;
            }
            *cursor += 1;
        }
        if *cursor >= end {
            return;
        }
        let body_end = self.matching_brace(*cursor, end);
        let body = Some((
            self.sig[*cursor],
            self.sig[body_end.min(self.sig.len() - 1)],
        ));
        // Recurse for nested items (closures' fns, nested mods are rare but
        // `impl` blocks never nest in bodies; nested `fn` items do appear).
        let mut inner = *cursor + 1;
        self.items(&mut inner, body_end, impl_type, in_test);
        *cursor = (body_end + 1).min(end);
        self.out.fns.push(FnItem {
            name,
            impl_type: impl_type.map(str::to_string),
            body,
            in_test,
            returns_result,
            line: fn_line,
        });
    }

    /// Advances to the next `{` or `;` at angle/paren depth 0.
    fn skip_to_body_or_semi(&self, cursor: &mut usize, end: usize) {
        let mut depth = 0i32;
        while *cursor < end {
            match self.text(*cursor) {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                "{" | ";" if depth <= 0 => return,
                _ => {}
            }
            *cursor += 1;
        }
    }

    /// Significant-token index of the `}` matching the `{` at `open`.
    fn matching_brace(&self, open: usize, end: usize) -> usize {
        self.matching(open, end, "{", "}")
    }

    fn matching(&self, open: usize, end: usize, open_t: &str, close_t: &str) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            let t = self.text(i);
            if t == open_t {
                depth += 1;
            } else if t == close_t {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end.saturating_sub(1)
    }

    /// Matches `<...>` allowing for `>>` being two tokens already (the lexer
    /// emits single-byte puncts, so this is plain counting).
    fn matching_angles(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            match self.text(i) {
                "<" => depth += 1,
                // `->` / `=>` inside generic bounds (e.g. `Fn() -> u32`):
                // the `>` there closes nothing.
                ">" if i > open && matches!(self.text(i - 1), "-" | "=") => {}
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end.saturating_sub(1)
    }
}

/// True if `t` looks like an identifier token.
fn is_ident(t: &str) -> bool {
    t.chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Detects a lock type in rendered type text (`Mutex < .. >`).
fn lock_kind_of(ty: &str) -> Option<LockKind> {
    for (needle, kind) in [("Mutex", LockKind::Mutex), ("RwLock", LockKind::RwLock)] {
        let mut search = 0;
        while let Some(found) = ty[search..].find(needle) {
            let at = search + found;
            let before_ok = at == 0
                || !ty[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after = ty[at + needle.len()..].chars().next();
            let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
            if before_ok && after_ok {
                return Some(kind);
            }
            search = at + needle.len();
        }
    }
    None
}

/// True if any attribute marks the item test-only.
fn attrs_mark_test(attrs: &[Attr]) -> bool {
    attrs.iter().any(|a| {
        let t = a.text.replace(' ', "");
        t.starts_with("cfg(test)")
            || t == "test"
            || t.starts_with("cfg(all(test")
            || t.starts_with("cfg(any(test")
            || t.starts_with("tokio::test")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_lock_fields_and_statics() {
        let src = "pub struct Pool {\n\
                       inner: Mutex<PoolInner>,\n\
                       pub map: RwLock<HashMap<u32, u32>>,\n\
                       count: usize,\n\
                   }\n\
                   static REGISTRY: parking_lot::Mutex<Vec<u8>> = Mutex::new(Vec::new());\n";
        let (_, parsed) = parse_source(src);
        assert_eq!(parsed.lock_fields.len(), 2, "{:?}", parsed.lock_fields);
        assert_eq!(parsed.lock_fields[0].struct_name, "Pool");
        assert_eq!(parsed.lock_fields[0].field, "inner");
        assert_eq!(parsed.lock_fields[0].kind, LockKind::Mutex);
        assert_eq!(parsed.lock_fields[1].field, "map");
        assert_eq!(parsed.lock_fields[1].kind, LockKind::RwLock);
        assert_eq!(parsed.lock_statics.len(), 1);
        assert_eq!(parsed.lock_statics[0].name, "REGISTRY");
    }

    #[test]
    fn mutex_guard_field_is_not_a_lock() {
        let src = "struct Held<'a> { g: MutexGuard<'a, u32>, r: RwLockReadGuard<'a, u8> }";
        let (_, parsed) = parse_source(src);
        assert!(parsed.lock_fields.is_empty(), "{:?}", parsed.lock_fields);
    }

    #[test]
    fn resolves_impl_context_and_fn_bodies() {
        let src = "impl Pool {\n\
                       pub fn get(&self) -> u32 { self.inner.lock().n }\n\
                       fn put(&self) {}\n\
                   }\n\
                   impl Drop for Pool { fn drop(&mut self) {} }\n\
                   fn free() -> Result<(), E> { Ok(()) }\n";
        let (_, parsed) = parse_source(src);
        let names: Vec<_> = parsed
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert!(names.contains(&("get", Some("Pool"))));
        assert!(names.contains(&("put", Some("Pool"))));
        assert!(names.contains(&("drop", Some("Pool"))));
        assert!(names.contains(&("free", None)));
        let free = parsed.fns.iter().find(|f| f.name == "free").expect("free");
        assert!(free.returns_result);
        let get = parsed.fns.iter().find(|f| f.name == "get").expect("get");
        assert!(!get.returns_result);
        assert!(get.body.is_some());
    }

    #[test]
    fn cfg_test_items_marked() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { prod(); }\n\
                   }\n";
        let (_, parsed) = parse_source(src);
        let t = parsed.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(t.in_test);
        let prod = parsed.fns.iter().find(|f| f.name == "prod").expect("prod");
        assert!(!prod.in_test);
        assert_eq!(parsed.test_regions.len(), 1);
        let pos = src.find("fn t").expect("present");
        assert!(parsed.in_test(pos));
        assert!(!parsed.in_test(0));
    }

    #[test]
    fn test_attr_on_bare_fn_marks_it() {
        let src = "#[test]\nfn standalone() { x.unwrap(); }\nfn lib() {}\n";
        let (_, parsed) = parse_source(src);
        let t = parsed
            .fns
            .iter()
            .find(|f| f.name == "standalone")
            .expect("fn");
        assert!(t.in_test);
        let pos = src.find("unwrap").expect("present");
        assert!(parsed.in_test(pos));
        let lib_pos = src.find("fn lib").expect("present");
        assert!(!parsed.in_test(lib_pos));
    }

    #[test]
    fn trait_impl_type_is_the_implementing_type() {
        let src = "impl fmt::Display for Diagnostic { fn fmt(&self) {} }";
        let (_, parsed) = parse_source(src);
        assert_eq!(parsed.fns[0].impl_type.as_deref(), Some("Diagnostic"));
    }

    #[test]
    fn generic_impl_resolves_base_type() {
        let src = "impl<T: Clone> Cache<T> { fn get(&self) {} }";
        let (_, parsed) = parse_source(src);
        // The last depth-0 path segment before `{` wins; generics on the
        // type are nested and skipped.
        assert_eq!(parsed.fns[0].impl_type.as_deref(), Some("Cache"));
    }
}
