//! CLI entry point: lint the workspace and exit non-zero on violations.
//!
//! ```text
//! flixcheck [--root <path>] [--format text|json|sarif]
//! ```
//!
//! `text` (default) prints `path:line: rule: message` lines plus a
//! summary; `json` and `sarif` print machine-readable reports on stdout
//! (the summary moves to stderr). The exit code is 0 when clean, 1 on
//! violations, 2 on usage or I/O errors.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Sarif,
}

fn usage() -> ExitCode {
    eprintln!("usage: flixcheck [--root <path>] [--format text|json|sarif]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                _ => return usage(),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let report = match root {
        Some(root) => flixcheck::run(&root),
        None => flixcheck::run_default(),
    };
    let report = match report {
        Ok(report) => report,
        Err(e) => {
            eprintln!("flixcheck: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Text => {
            for diag in &report.diagnostics {
                println!("{diag}");
            }
        }
        Format::Json => print!("{}", flixcheck::sarif::to_json(&report.diagnostics)),
        Format::Sarif => print!("{}", flixcheck::sarif::to_sarif(&report.diagnostics)),
    }
    if report.is_clean() {
        eprintln!(
            "flixcheck: {} files scanned, no violations",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "flixcheck: {} violation(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
