//! CLI entry point: lint the workspace and exit non-zero on violations.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let report = match flixcheck::run_default() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("flixcheck: {e}");
            return ExitCode::from(2);
        }
    };
    for diag in &report.diagnostics {
        println!("{diag}");
    }
    if report.is_clean() {
        println!(
            "flixcheck: {} files scanned, no violations",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "flixcheck: {} violation(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
