//! flixcheck — workspace static analysis + index integrity auditing.
//!
//! Two halves:
//!
//! 1. A from-scratch, dependency-free **lint pass** ([`lint`]) over every
//!    `crates/*/src/**/*.rs` file enforcing the workspace's production-code
//!    hygiene rules (no `unwrap`/`expect`/`panic!` in library paths, no
//!    un-allowlisted `unsafe`, doc comments on public items in the core
//!    crates). Run it with `cargo run -p flixcheck`; it also runs under
//!    `cargo test` via this crate's tests and a root integration test.
//!
//! 2. The [`IntegrityCheck`] trait ([`integrity`]) implemented by every
//!    index/storage structure in the workspace, so a built index can be
//!    deeply audited (interval nesting, 2-hop cover soundness, extent
//!    partitions, slot directories, ...) in tests and via `repro --check`.
//!
//! This crate is a dependency leaf: it uses only `std`, so every other
//! crate can depend on it without cycles.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod integrity;
pub mod lint;
pub mod scanner;

pub use integrity::{
    IntegrityCheck, IntegrityChecker, IntegrityError, IntegrityReport, IntegrityViolation,
};
pub use lint::{find_workspace_root, lint_file, run, run_default, Diagnostic, LintReport, Rule};
