//! flixcheck — workspace static analysis + index integrity auditing.
//!
//! Two halves:
//!
//! 1. A from-scratch, dependency-free **static-analysis pass** over every
//!    `crates/*/src/**/*.rs` file (plus the root `src/` and `examples/`
//!    trees): a real lexer ([`lex`]) and lightweight parser ([`parse`])
//!    feed a cross-file concurrency extractor ([`conc`]) that builds the
//!    workspace lock-order graph and reports deadlock cycles and blocking
//!    calls under held guards, alongside token rules (cast truncation,
//!    swallowed `Result`s, relaxed atomics) and the original text rules
//!    (no `unwrap`/`expect`/`panic!` in library paths, no un-allowlisted
//!    `unsafe`, doc comments on public items in the core crates). Findings
//!    print as `path:line: rule: message`, or as JSON / SARIF 2.1.0
//!    ([`sarif`]); site-level `// flixcheck: allow(<rule>): <reason>`
//!    suppressions require a reason. Run it with `cargo run -p flixcheck`;
//!    it also runs under `cargo test` via a root integration test.
//!
//! 2. The [`IntegrityCheck`] trait ([`integrity`]) implemented by every
//!    index/storage structure in the workspace, so a built index can be
//!    deeply audited (interval nesting, 2-hop cover soundness, extent
//!    partitions, slot directories, ...) in tests and via `repro --check`.
//!
//! This crate is a dependency leaf: it uses only `std`, so every other
//! crate can depend on it without cycles.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod conc;
pub mod integrity;
pub mod lex;
pub mod lint;
pub mod parse;
pub mod sarif;
pub mod scanner;

pub use integrity::{
    IntegrityCheck, IntegrityChecker, IntegrityError, IntegrityReport, IntegrityViolation,
};
pub use lint::{find_workspace_root, lint_file, run, run_default, Diagnostic, LintReport, Rule};
