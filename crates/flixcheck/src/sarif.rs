//! Machine-readable diagnostic output: SARIF 2.1.0 and plain JSON.
//!
//! Hand-rolled emitters (this crate is a std-only dependency leaf, so no
//! serde). The SARIF shape targets the subset consumed by `ci.sh` and by
//! code-scanning UIs: one `run` with a `tool.driver` listing every rule,
//! and one `result` per diagnostic carrying a `physicalLocation`.

use crate::lint::{Diagnostic, Rule};
use std::collections::BTreeSet;

/// Escapes `s` for inclusion inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a plain JSON array of objects, stable key order.
pub fn to_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.path),
            d.line,
            d.rule.name(),
            json_escape(&d.message)
        ));
    }
    if !diagnostics.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders diagnostics as a SARIF 2.1.0 log with a single run.
pub fn to_sarif(diagnostics: &[Diagnostic]) -> String {
    // Rule metadata: every rule that appears, plus the full catalog so the
    // driver block is stable across runs.
    let mut rule_ids: BTreeSet<&'static str> = Rule::ALL.iter().map(|r| r.name()).collect();
    for d in diagnostics {
        rule_ids.insert(d.rule.name());
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"flixcheck\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/flix/flixcheck\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, id) in rule_ids.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            json_escape(id),
            json_escape(rule_description(id))
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \"artifactLocation\": {{\"uri\": \"{}\"}},\n                \"region\": {{\"startLine\": {}}}\n              }}\n            }}\n          ]\n        }}",
            json_escape(d.rule.name()),
            json_escape(&d.message),
            json_escape(&d.path),
            d.line
        ));
    }
    if !diagnostics.is_empty() {
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// One-line description for each rule id, used in the SARIF driver block.
fn rule_description(id: &str) -> &'static str {
    match id {
        "unwrap-expect" => "unwrap/expect in production code",
        "panic" => "panic!/unreachable!/todo! in production code",
        "unsafe" => "unsafe block outside the allowlist",
        "missing-docs" => "public item without a doc comment",
        "instant-now" => "raw Instant::now or SystemTime::now bypassing the obs clock",
        "unbounded-channel" => "unbounded channel constructor",
        "allowlist-stale" => "allowlist ceiling higher than observed count",
        "lock-order" => "lock acquisition order forms a cycle (potential deadlock)",
        "blocking-while-locked" => "blocking operation while a lock guard is live",
        "cast-truncation" => "narrowing cast on a length/index value",
        "swallowed-result" => "Result silently discarded via let _ =",
        "atomic-ordering" => "bare Ordering::Relaxed outside sanctioned counters",
        "unsynced-write" => "file write outside the fsync-paired durability layer",
        "suppression" => "malformed or unused inline suppression",
        _ => "flixcheck diagnostic",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: Rule::UnwrapExpect,
                message: "found `unwrap` with \"quotes\" and \\ backslash".into(),
            },
            Diagnostic {
                path: "crates/y/src/a.rs".into(),
                line: 10,
                rule: Rule::LockOrder,
                message: "cycle {A::a, B::b}".into(),
            },
        ]
    }

    #[test]
    fn json_escapes_and_roundtrips_shape() {
        let out = to_json(&sample());
        assert!(out.starts_with('['));
        assert!(out.trim_end().ends_with(']'));
        assert!(out.contains("\\\"quotes\\\""));
        assert!(out.contains("\\\\ backslash"));
        assert!(out.contains("\"rule\": \"lock-order\""));
    }

    #[test]
    fn empty_inputs_are_valid() {
        assert_eq!(to_json(&[]), "[]\n");
        let s = to_sarif(&[]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"results\": ["));
    }

    #[test]
    fn sarif_has_required_members() {
        let s = to_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"runs\""));
        assert!(s.contains("\"tool\""));
        assert!(s.contains("\"driver\""));
        assert!(s.contains("\"name\": \"flixcheck\""));
        assert!(s.contains("\"ruleId\": \"lock-order\""));
        assert!(s.contains("\"uri\": \"crates/y/src/a.rs\""));
        assert!(s.contains("\"startLine\": 10"));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = s.matches('{').count();
        let closes = s.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("tab\there"), "tab\\there");
    }
}
