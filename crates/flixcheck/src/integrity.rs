//! Deep integrity auditing for index and storage structures.
//!
//! Every index structure in the workspace (PPO, HOPI, APEX, the FliX meta
//! documents, and the page store) implements [`IntegrityCheck`]: a full
//! self-audit of the structure's invariants, returning either a report of
//! what was checked or a list of concrete violations. The checks are meant
//! to be cheap enough to run in tests and behind `repro --check`, and
//! precise enough that a corrupted structure (a swapped interval bound, a
//! dropped 2-hop entry, a broken slot directory) is pinpointed rather than
//! surfacing later as a wrong query result.

use std::error::Error;
use std::fmt;

/// A structure that can audit its own invariants.
pub trait IntegrityCheck {
    /// Verifies every documented invariant of the structure.
    ///
    /// Returns a report of the checks performed, or an error carrying
    /// one entry per violated invariant.
    fn integrity_check(&self) -> Result<IntegrityReport, IntegrityError>;
}

/// One violated invariant, with enough detail to locate the corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityViolation {
    /// Short name of the invariant that failed.
    pub invariant: String,
    /// What was observed, with the offending ids/offsets.
    pub detail: String,
}

impl fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Successful audit summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Name of the audited structure (e.g. `"PpoIndex"`).
    pub structure: String,
    /// Number of invariants verified.
    pub invariants_checked: usize,
}

impl fmt::Display for IntegrityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} invariants hold",
            self.structure, self.invariants_checked
        )
    }
}

/// Failed audit: one or more invariants do not hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityError {
    /// Name of the audited structure.
    pub structure: String,
    /// Every violated invariant found (the audit does not stop early).
    pub violations: Vec<IntegrityViolation>,
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} integrity violation(s)",
            self.structure,
            self.violations.len()
        )?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

impl Error for IntegrityError {}

/// Incremental builder for an audit: register checks, then [`finish`].
///
/// [`finish`]: IntegrityChecker::finish
///
/// ```
/// use flixcheck::IntegrityChecker;
/// let mut audit = IntegrityChecker::new("Demo");
/// audit.check("lengths agree", 2 == 2, || "unreachable".to_string());
/// assert!(audit.finish().is_ok());
/// ```
#[derive(Debug)]
pub struct IntegrityChecker {
    structure: String,
    checked: usize,
    violations: Vec<IntegrityViolation>,
}

impl IntegrityChecker {
    /// Starts an audit of the named structure.
    pub fn new(structure: &str) -> Self {
        Self {
            structure: structure.to_string(),
            checked: 0,
            violations: Vec::new(),
        }
    }

    /// Records one invariant check; `detail` is only evaluated on failure.
    pub fn check(&mut self, invariant: &str, holds: bool, detail: impl FnOnce() -> String) {
        self.checked += 1;
        if !holds {
            self.violations.push(IntegrityViolation {
                invariant: invariant.to_string(),
                detail: detail(),
            });
        }
    }

    /// Records a violation directly (for checks with multiple findings).
    pub fn violation(&mut self, invariant: &str, detail: String) {
        self.violations.push(IntegrityViolation {
            invariant: invariant.to_string(),
            detail,
        });
    }

    /// Number of violations recorded so far.
    pub fn violation_count(&self) -> usize {
        self.violations.len()
    }

    /// Completes the audit.
    pub fn finish(self) -> Result<IntegrityReport, IntegrityError> {
        if self.violations.is_empty() {
            Ok(IntegrityReport {
                structure: self.structure,
                invariants_checked: self.checked,
            })
        } else {
            Err(IntegrityError {
                structure: self.structure,
                violations: self.violations,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_audit_reports_checked_count() {
        let mut audit = IntegrityChecker::new("X");
        audit.check("a", true, || unreachable!());
        audit.check("b", true, || unreachable!());
        let report = audit.finish().expect("clean");
        assert_eq!(report.invariants_checked, 2);
        assert_eq!(report.to_string(), "X: 2 invariants hold");
    }

    #[test]
    fn failed_audit_collects_all_violations() {
        let mut audit = IntegrityChecker::new("X");
        audit.check("a", false, || "first".to_string());
        audit.check("b", true, || unreachable!());
        audit.violation("c", "second".to_string());
        let err = audit.finish().expect_err("violations present");
        assert_eq!(err.violations.len(), 2);
        let text = err.to_string();
        assert!(text.contains("a: first"));
        assert!(text.contains("c: second"));
    }

    #[test]
    fn detail_closure_lazy() {
        let mut audit = IntegrityChecker::new("X");
        audit.check("ok", true, || panic!("must not evaluate"));
        assert!(audit.finish().is_ok());
    }
}
