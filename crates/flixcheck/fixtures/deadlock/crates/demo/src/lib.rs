//! Seeded AB-BA deadlock: `post` takes `accounts` then `journal`,
//! `audit` takes them in the opposite order, so the lock-order graph has
//! the cycle `Ledger::accounts -> Ledger::journal -> Ledger::accounts`.
//!
//! This tree is NOT part of the workspace walk (it lives under
//! `crates/flixcheck/fixtures/`, not a `src/` dir). It exists so ci.sh and
//! `tests/static_analysis.rs` can assert that flixcheck exits non-zero on
//! a known-deadlocking source tree.

use std::sync::Mutex;

pub struct Ledger {
    accounts: Mutex<Vec<u64>>,
    journal: Mutex<Vec<String>>,
}

impl Ledger {
    pub fn post(&self) {
        let accounts = self.accounts.lock();
        let journal = self.journal.lock();
        drop(journal);
        drop(accounts);
    }

    pub fn audit(&self) {
        let journal = self.journal.lock();
        let accounts = self.accounts.lock();
        drop(accounts);
        drop(journal);
    }
}
