//! Element trees, document collections, and the sealed union graph `G_X`.

use crate::links::{LinkSpec, LinkTarget};
use graphcore::{Digraph, DigraphBuilder, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interned tag-name identifier.
pub type TagId = u32;

/// Element index local to one document (0 is the root).
pub type LocalId = u32;

/// Bidirectional interner for element tag names.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TagInterner {
    names: Vec<String>,
    #[serde(skip)]
    map: HashMap<String, TagId>,
}

impl TagInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = self.names.len() as TagId;
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), id);
        id
    }

    /// Looks a name up without interning.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.map.get(name).copied()
    }

    /// The name behind an id.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id as usize]
    }

    /// Number of distinct tags.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no tag has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuilds the lookup map after deserialisation.
    pub fn rebuild_map(&mut self) {
        self.map = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as TagId))
            .collect();
    }
}

/// One XML element: tag, parent pointer, attributes, and direct text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Element {
    /// Interned tag name.
    pub tag: TagId,
    /// Parent element, `None` for the document root.
    pub parent: Option<LocalId>,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Concatenated direct text content (trimmed).
    pub text: String,
}

impl Element {
    /// Attribute value lookup.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A single XML document: an element tree plus its extracted links.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    /// Document name (unique within a collection), e.g. `conf/vldb/X.xml`.
    pub name: String,
    elements: Vec<Element>,
    children: Vec<Vec<LocalId>>,
    /// Anchor id -> element carrying it.
    anchors: HashMap<String, LocalId>,
    /// Extracted links `(source element, target)`.
    links: Vec<(LocalId, LinkTarget)>,
}

impl Document {
    /// Creates an empty document (no root yet).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            elements: Vec::new(),
            children: Vec::new(),
            anchors: HashMap::new(),
            links: Vec::new(),
        }
    }

    /// Appends an element. The first element must be the root
    /// (`parent == None`); all later elements need an existing parent.
    ///
    /// # Panics
    /// On a second root or a dangling parent id.
    pub fn add_element(&mut self, tag: TagId, parent: Option<LocalId>) -> LocalId {
        match parent {
            None => assert!(self.elements.is_empty(), "document already has a root"),
            Some(p) => assert!(
                (p as usize) < self.elements.len(),
                "parent {p} does not exist"
            ),
        }
        let id = self.elements.len() as LocalId;
        self.elements.push(Element {
            tag,
            parent,
            attrs: Vec::new(),
            text: String::new(),
        });
        self.children.push(Vec::new());
        if let Some(p) = parent {
            self.children[p as usize].push(id);
        }
        id
    }

    /// Sets an attribute on an element (appends; duplicate names are the
    /// caller's responsibility, as in raw XML).
    pub fn set_attr(&mut self, el: LocalId, name: impl Into<String>, value: impl Into<String>) {
        self.elements[el as usize]
            .attrs
            .push((name.into(), value.into()));
    }

    /// Appends text content to an element.
    pub fn append_text(&mut self, el: LocalId, text: &str) {
        let t = &mut self.elements[el as usize].text;
        if !t.is_empty() && !text.is_empty() {
            t.push(' ');
        }
        t.push_str(text.trim());
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the document has no elements yet.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The root element id (0). Panics on an empty document.
    pub fn root(&self) -> LocalId {
        assert!(!self.elements.is_empty(), "empty document has no root");
        0
    }

    /// Element accessor.
    pub fn element(&self, id: LocalId) -> &Element {
        &self.elements[id as usize]
    }

    /// Children of an element in document order.
    pub fn children(&self, id: LocalId) -> &[LocalId] {
        &self.children[id as usize]
    }

    /// All elements with their ids, in document (pre-)order.
    pub fn elements(&self) -> impl Iterator<Item = (LocalId, &Element)> {
        self.elements
            .iter()
            .enumerate()
            .map(|(i, e)| (i as LocalId, e))
    }

    /// Extracted links.
    pub fn links(&self) -> &[(LocalId, LinkTarget)] {
        &self.links
    }

    /// Element carrying anchor `id`, if any.
    pub fn anchor(&self, id: &str) -> Option<LocalId> {
        self.anchors.get(id).copied()
    }

    /// All registered anchors as `(id, element)` pairs (unordered).
    pub fn anchors(&self) -> impl Iterator<Item = (&str, LocalId)> {
        self.anchors.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Records a link explicitly (used by generators that do not go through
    /// attribute extraction).
    pub fn add_link(&mut self, source: LocalId, target: LinkTarget) {
        assert!((source as usize) < self.elements.len());
        self.links.push((source, target));
    }

    /// Registers an anchor explicitly.
    pub fn add_anchor(&mut self, id: impl Into<String>, el: LocalId) {
        self.anchors.insert(id.into(), el);
    }

    /// Scans attributes with `spec` and (re)builds anchors and links.
    pub fn extract_links(&mut self, spec: &LinkSpec) {
        self.anchors.clear();
        self.links.clear();
        let mut found: Vec<(LocalId, LinkTarget)> = Vec::new();
        for (i, el) in self.elements.iter().enumerate() {
            for (name, value) in &el.attrs {
                if spec.is_anchor(name) {
                    self.anchors.insert(value.clone(), i as LocalId);
                }
                for t in spec.targets_of(name, value) {
                    found.push((i as LocalId, t));
                }
            }
        }
        self.links = found;
    }

    /// Total bytes of text + attribute payload (used for corpus-size stats).
    pub fn payload_bytes(&self) -> usize {
        self.elements
            .iter()
            .map(|e| {
                e.text.len()
                    + e.attrs
                        .iter()
                        .map(|(k, v)| k.len() + v.len())
                        .sum::<usize>()
            })
            .sum()
    }
}

/// A mutable collection of documents, pre-sealing.
#[derive(Debug, Clone, Default)]
pub struct Collection {
    /// Shared tag interner across all documents.
    pub tags: TagInterner,
    docs: Vec<Document>,
    doc_index: HashMap<String, u32>,
}

impl Collection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a document. Returns its id, or an error on a duplicate name.
    pub fn add_document(&mut self, doc: Document) -> Result<u32, String> {
        if self.doc_index.contains_key(&doc.name) {
            return Err(format!("duplicate document name {:?}", doc.name));
        }
        let id = self.docs.len() as u32;
        self.doc_index.insert(doc.name.clone(), id);
        self.docs.push(doc);
        Ok(id)
    }

    /// Number of documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Document accessor.
    pub fn doc(&self, id: u32) -> &Document {
        &self.docs[id as usize]
    }

    /// Mutable document accessor.
    pub fn doc_mut(&mut self, id: u32) -> &mut Document {
        &mut self.docs[id as usize]
    }

    /// Lookup by document name.
    pub fn doc_by_name(&self, name: &str) -> Option<u32> {
        self.doc_index.get(name).copied()
    }

    /// Iterates over `(doc_id, document)`.
    pub fn docs(&self) -> impl Iterator<Item = (u32, &Document)> {
        self.docs.iter().enumerate().map(|(i, d)| (i as u32, d))
    }

    /// Total element count across all documents.
    pub fn element_count(&self) -> usize {
        self.docs.iter().map(Document::len).sum()
    }

    /// Resolves all links and freezes the collection into a
    /// [`CollectionGraph`]. Links to unknown documents or anchors are
    /// counted as dangling and dropped.
    pub fn seal(self) -> CollectionGraph {
        let n_docs = self.docs.len();
        let mut node_base = Vec::with_capacity(n_docs + 1);
        let mut total = 0u32;
        for d in &self.docs {
            node_base.push(total);
            total += d.len() as u32;
        }
        node_base.push(total);
        let n = total as usize;

        let mut node_doc = vec![0u32; n];
        let mut node_tag = vec![0 as TagId; n];
        let mut builder = DigraphBuilder::with_nodes(n);
        for (d, doc) in self.docs.iter().enumerate() {
            let base = node_base[d];
            for (local, el) in doc.elements() {
                let g = base + local;
                node_doc[g as usize] = d as u32;
                node_tag[g as usize] = el.tag;
                if let Some(p) = el.parent {
                    builder.add_edge(base + p, g);
                }
            }
        }

        let mut link_edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut dangling = 0usize;
        let mut doc_links: Vec<(u32, u32)> = Vec::new();
        for (d, doc) in self.docs.iter().enumerate() {
            let base = node_base[d];
            for (src_local, target) in doc.links() {
                let target_doc = match &target.document {
                    None => d as u32,
                    Some(name) => match self.doc_index.get(name) {
                        Some(&t) => t,
                        None => {
                            dangling += 1;
                            continue;
                        }
                    },
                };
                let tdoc = &self.docs[target_doc as usize];
                if tdoc.is_empty() {
                    dangling += 1;
                    continue;
                }
                let target_local = match &target.fragment {
                    None => tdoc.root(),
                    Some(frag) => match tdoc.anchor(frag) {
                        Some(l) => l,
                        None => {
                            dangling += 1;
                            continue;
                        }
                    },
                };
                let src = base + src_local;
                let dst = node_base[target_doc as usize] + target_local;
                if src != dst {
                    builder.add_edge(src, dst);
                    link_edges.push((src, dst));
                    if d as u32 != target_doc {
                        doc_links.push((d as u32, target_doc));
                    }
                }
            }
        }
        link_edges.sort_unstable();
        link_edges.dedup();

        let mut nodes_by_tag: Vec<Vec<NodeId>> = vec![Vec::new(); self.tags.len()];
        for (i, &t) in node_tag.iter().enumerate() {
            nodes_by_tag[t as usize].push(i as NodeId);
        }

        let doc_graph = Digraph::from_edges(n_docs, doc_links);

        CollectionGraph {
            graph: builder.build(),
            node_base,
            node_doc,
            node_tag,
            nodes_by_tag,
            link_edges,
            doc_graph,
            dangling_links: dangling,
            collection: self,
        }
    }
}

/// The sealed union graph `G_X` of a collection, with node metadata.
///
/// Global node ids are dense: document `d`'s element `l` is node
/// `node_base[d] + l`, so all per-node metadata lives in flat arrays.
#[derive(Debug, Clone)]
pub struct CollectionGraph {
    /// The original collection (documents, tags, text).
    pub collection: Collection,
    /// Union graph: tree edges plus resolved link edges.
    pub graph: Digraph,
    /// `node_base[d]` = global id of document `d`'s root; one extra entry
    /// holds the total node count.
    pub node_base: Vec<u32>,
    /// Document of each global node.
    pub node_doc: Vec<u32>,
    /// Tag of each global node.
    pub node_tag: Vec<TagId>,
    /// Global nodes per tag, ascending.
    pub nodes_by_tag: Vec<Vec<NodeId>>,
    /// Resolved link edges (sorted). A link edge may coincide with a tree
    /// edge; the union graph stores it once.
    pub link_edges: Vec<(NodeId, NodeId)>,
    /// Document-level graph: an edge `d1 -> d2` for every inter-document
    /// link (deduplicated).
    pub doc_graph: Digraph,
    /// Number of links that pointed at unknown documents or anchors.
    pub dangling_links: usize,
}

impl CollectionGraph {
    /// Total number of element nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Global id of `(doc, local)`.
    pub fn global(&self, doc: u32, local: LocalId) -> NodeId {
        debug_assert!(local < self.node_base[doc as usize + 1] - self.node_base[doc as usize]);
        self.node_base[doc as usize] + local
    }

    /// Inverse of [`Self::global`].
    pub fn local_of(&self, node: NodeId) -> (u32, LocalId) {
        let doc = self.node_doc[node as usize];
        (doc, node - self.node_base[doc as usize])
    }

    /// Tag of a node.
    pub fn tag_of(&self, node: NodeId) -> TagId {
        self.node_tag[node as usize]
    }

    /// Document of a node.
    pub fn doc_of(&self, node: NodeId) -> u32 {
        self.node_doc[node as usize]
    }

    /// The element data behind a node.
    pub fn element(&self, node: NodeId) -> &Element {
        let (doc, local) = self.local_of(node);
        self.collection.doc(doc).element(local)
    }

    /// Root node of a document.
    pub fn doc_root(&self, doc: u32) -> NodeId {
        self.node_base[doc as usize]
    }

    /// All nodes carrying `tag`, ascending.
    pub fn nodes_with_tag(&self, tag: TagId) -> &[NodeId] {
        self.nodes_by_tag
            .get(tag as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True if `u -> v` is a link edge (rather than a pure tree edge).
    pub fn is_link_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.link_edges.binary_search(&(u, v)).is_ok()
    }

    /// Number of resolved link edges.
    pub fn link_count(&self) -> usize {
        self.link_edges.len()
    }

    /// Extends the collection with additional documents and re-seals.
    ///
    /// Existing global node ids, document ids, and tag ids are stable:
    /// node ids are dense per document in document order, and new
    /// documents only append. Previously dangling links that the new
    /// documents resolve become real edges.
    ///
    /// # Errors
    /// On duplicate document names.
    pub fn extend(&self, new_docs: Vec<Document>) -> Result<CollectionGraph, String> {
        let mut collection = self.collection.clone();
        collection.tags.rebuild_map();
        for d in new_docs {
            collection.add_document(d)?;
        }
        let extended = collection.seal();
        debug_assert_eq!(
            &extended.node_base[..self.node_base.len()],
            &self.node_base[..],
            "existing node ids must be stable under extension"
        );
        Ok(extended)
    }

    /// Corpus statistics used in §6-style reporting.
    pub fn stats(&self) -> CollectionStats {
        CollectionStats {
            documents: self.collection.doc_count(),
            elements: self.node_count(),
            links: self.link_count(),
            tags: self.collection.tags.len(),
            edges: self.graph.edge_count(),
            payload_bytes: self.collection.docs().map(|(_, d)| d.payload_bytes()).sum(),
            dangling_links: self.dangling_links,
        }
    }
}

/// Summary statistics of a sealed collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionStats {
    /// Number of documents.
    pub documents: usize,
    /// Total elements.
    pub elements: usize,
    /// Resolved link edges.
    pub links: usize,
    /// Distinct tag names.
    pub tags: usize,
    /// Edges in the union graph.
    pub edges: usize,
    /// Text + attribute payload bytes.
    pub payload_bytes: usize,
    /// Unresolvable links dropped at seal time.
    pub dangling_links: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_doc_collection() -> Collection {
        let mut c = Collection::new();
        let (a, b, lnk) = (
            c.tags.intern("article"),
            c.tags.intern("body"),
            c.tags.intern("cite"),
        );

        let mut d1 = Document::new("d1.xml");
        let r1 = d1.add_element(a, None);
        let b1 = d1.add_element(b, Some(r1));
        let c1 = d1.add_element(lnk, Some(b1));
        d1.set_attr(c1, "xlink:href", "d2.xml#sec2");
        d1.set_attr(b1, "id", "intro");
        d1.extract_links(&LinkSpec::default());

        let mut d2 = Document::new("d2.xml");
        let r2 = d2.add_element(a, None);
        let s1 = d2.add_element(b, Some(r2));
        let s2 = d2.add_element(b, Some(r2));
        d2.set_attr(s2, "id", "sec2");
        let back = d2.add_element(lnk, Some(s1));
        d2.set_attr(back, "idref", "missing-anchor");
        d2.extract_links(&LinkSpec::default());

        c.add_document(d1).unwrap();
        c.add_document(d2).unwrap();
        c
    }

    #[test]
    fn interner_round_trips() {
        let mut t = TagInterner::new();
        let a = t.intern("movie");
        let b = t.intern("actor");
        assert_eq!(t.intern("movie"), a);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "movie");
        assert_eq!(t.get("actor"), Some(b));
        assert_eq!(t.get("nope"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn document_tree_structure() {
        let mut t = TagInterner::new();
        let tag = t.intern("x");
        let mut d = Document::new("t.xml");
        let r = d.add_element(tag, None);
        let k1 = d.add_element(tag, Some(r));
        let k2 = d.add_element(tag, Some(r));
        let k3 = d.add_element(tag, Some(k1));
        assert_eq!(d.root(), r);
        assert_eq!(d.children(r), &[k1, k2]);
        assert_eq!(d.children(k1), &[k3]);
        assert_eq!(d.element(k3).parent, Some(k1));
        assert_eq!(d.len(), 4);
    }

    #[test]
    #[should_panic(expected = "already has a root")]
    fn double_root_panics() {
        let mut d = Document::new("t.xml");
        d.add_element(0, None);
        d.add_element(0, None);
    }

    #[test]
    fn text_accumulates_with_separator() {
        let mut d = Document::new("t.xml");
        let r = d.add_element(0, None);
        d.append_text(r, "  hello ");
        d.append_text(r, "world");
        assert_eq!(d.element(r).text, "hello world");
    }

    #[test]
    fn seal_resolves_cross_document_link() {
        let cg = two_doc_collection().seal();
        assert_eq!(cg.node_count(), 7);
        // d1's cite (global 2) -> d2's sec2 element (global 3 + 2 = 5... d2
        // base is 3; sec2 is d2-local element 2 -> global 5)
        assert!(cg.is_link_edge(2, 5));
        assert!(cg.graph.has_edge(2, 5));
        // intra-doc idref to a missing anchor is dangling
        assert_eq!(cg.dangling_links, 1);
        assert_eq!(cg.link_count(), 1);
        // doc graph has a single edge d0 -> d1
        assert!(cg.doc_graph.has_edge(0, 1));
        assert_eq!(cg.doc_graph.edge_count(), 1);
    }

    #[test]
    fn global_local_round_trip() {
        let cg = two_doc_collection().seal();
        for node in 0..cg.node_count() as NodeId {
            let (d, l) = cg.local_of(node);
            assert_eq!(cg.global(d, l), node);
        }
        assert_eq!(cg.doc_root(1), 3);
    }

    #[test]
    fn tags_indexed() {
        let cg = two_doc_collection().seal();
        let body = cg.collection.tags.get("body").unwrap();
        assert_eq!(cg.nodes_with_tag(body), &[1, 4, 5]);
        let article = cg.collection.tags.get("article").unwrap();
        assert_eq!(cg.nodes_with_tag(article), &[0, 3]);
    }

    #[test]
    fn stats_report() {
        let cg = two_doc_collection().seal();
        let s = cg.stats();
        assert_eq!(s.documents, 2);
        assert_eq!(s.elements, 7);
        assert_eq!(s.links, 1);
        assert_eq!(s.dangling_links, 1);
        assert_eq!(s.tags, 3);
        // 5 tree edges + 1 link edge
        assert_eq!(s.edges, 6);
    }

    #[test]
    fn duplicate_doc_name_rejected() {
        let mut c = Collection::new();
        c.add_document(Document::new("a.xml")).unwrap();
        assert!(c.add_document(Document::new("a.xml")).is_err());
    }

    #[test]
    fn link_to_document_root_when_no_fragment() {
        let mut c = Collection::new();
        let t = c.tags.intern("doc");
        let mut d1 = Document::new("a.xml");
        let r = d1.add_element(t, None);
        d1.add_link(
            r,
            LinkTarget {
                document: Some("b.xml".into()),
                fragment: None,
            },
        );
        let mut d2 = Document::new("b.xml");
        d2.add_element(t, None);
        c.add_document(d1).unwrap();
        c.add_document(d2).unwrap();
        let cg = c.seal();
        assert!(cg.is_link_edge(0, 1));
    }
}
