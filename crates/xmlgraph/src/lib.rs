//! XML data model for interlinked document collections (paper §2.1).
//!
//! A collection `X = {d1, ..., dn}` of XML documents is represented by the
//! union graph `G_X = (V_X, E_X)`: the vertices are all elements of all
//! documents, the edges are the parent-child relationships *plus* all
//! intra-document links (`id`/`idref`) and inter-document links (XLink
//! `href`s pointing at other documents or fragments inside them).
//!
//! The crate provides:
//!
//! * [`model`]: tag interning, [`model::Document`] element trees,
//!   [`model::Collection`] and the sealed [`model::CollectionGraph`] that
//!   every index in the workspace consumes,
//! * [`parser`]: a from-scratch, well-formedness-checking XML parser
//!   (elements, attributes, text, CDATA, comments, PIs, numeric and named
//!   entities) — no third-party XML crate is used anywhere,
//! * [`writer`]: serialisation of documents back to XML text,
//! * [`links`]: the attribute conventions (`id`, `idref`, `idrefs`,
//!   `xlink:href`, `href`) by which links are recognised.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

/// Link-recognition conventions (IDREF, XLink, key-based joins).
pub mod links;
/// Element trees, document collections, and the union graph `G_X`.
pub mod model;
/// A from-scratch, well-formedness-checking XML parser.
pub mod parser;
/// Serialisation of documents back to indented, escaped XML text.
pub mod writer;

pub use links::{LinkSpec, LinkTarget};
pub use model::{Collection, CollectionGraph, Document, Element, LocalId, TagId, TagInterner};
pub use parser::{parse_document, ParseError};
pub use writer::write_document;
