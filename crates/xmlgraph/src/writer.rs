//! Serialisation of [`Document`]s back to XML text.
//!
//! The writer produces indented, entity-escaped XML that the crate's own
//! parser round-trips (structure, attributes, and trimmed text survive; the
//! exact whitespace layout does not, by design).

use crate::model::{Document, LocalId, TagInterner};
use std::fmt::Write;

/// Escapes text content (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value for double-quoted output.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serialises a document to XML text with two-space indentation.
pub fn write_document(doc: &Document, tags: &TagInterner) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\"?>\n");
    if !doc.is_empty() {
        write_element(doc, tags, doc.root(), 0, &mut out);
    }
    out
}

fn write_element(doc: &Document, tags: &TagInterner, el: LocalId, depth: usize, out: &mut String) {
    let e = doc.element(el);
    let indent = "  ".repeat(depth);
    let name = tags.name(e.tag);
    let _ = write!(out, "{indent}<{name}");
    for (k, v) in &e.attrs {
        let _ = write!(out, " {k}=\"{}\"", escape_attr(v));
    }
    let kids = doc.children(el);
    if kids.is_empty() && e.text.is_empty() {
        out.push_str("/>\n");
        return;
    }
    out.push('>');
    if !e.text.is_empty() {
        out.push_str(&escape_text(&e.text));
    }
    if kids.is_empty() {
        let _ = writeln!(out, "</{name}>");
        return;
    }
    out.push('\n');
    for &k in kids {
        write_element(doc, tags, k, depth + 1, out);
    }
    let _ = writeln!(out, "{indent}</{name}>");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::LinkSpec;
    use crate::parser::parse_document;

    #[test]
    fn escaping() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(
            escape_attr(r#"say "hi" & <go>"#),
            "say &quot;hi&quot; &amp; &lt;go>"
        );
    }

    #[test]
    fn round_trip_structure() {
        let input = r#"<paper id="p1"><title>ARIES &amp; friends</title><cite xlink:href="x.xml#a"/></paper>"#;
        let mut tags = TagInterner::new();
        let spec = LinkSpec::default();
        let doc = parse_document("p.xml", input, &mut tags, &spec).unwrap();
        let text = write_document(&doc, &tags);
        let doc2 = parse_document("p.xml", &text, &mut tags, &spec).unwrap();
        assert_eq!(doc.len(), doc2.len());
        for (i, e) in doc.elements() {
            let e2 = doc2.element(i);
            assert_eq!(e.tag, e2.tag);
            assert_eq!(e.attrs, e2.attrs);
            assert_eq!(e.text, e2.text);
            assert_eq!(e.parent, e2.parent);
        }
        assert_eq!(doc.links(), doc2.links());
    }

    #[test]
    fn empty_element_self_closes() {
        let mut tags = TagInterner::new();
        let t = tags.intern("a");
        let mut d = Document::new("t.xml");
        d.add_element(t, None);
        let text = write_document(&d, &tags);
        assert!(text.contains("<a/>"));
    }
}
