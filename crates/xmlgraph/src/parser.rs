//! A from-scratch, well-formedness-checking XML parser.
//!
//! Supports the XML subset the paper's corpora need: elements, attributes
//! (single- or double-quoted), character data, CDATA sections, comments,
//! processing instructions, an optional prolog and DOCTYPE, and the five
//! named entities plus decimal/hex character references. Namespaces are not
//! expanded; prefixed names (`xlink:href`) are kept verbatim, which is all
//! the link extraction requires.

use crate::links::LinkSpec;
use crate::model::{Document, LocalId, TagInterner};
use std::fmt;

/// Parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in bytes).
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Scanner<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.input[..self.pos.min(self.input.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            line,
            column: col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Advances until `marker` and returns the bytes before it.
    fn take_until(&mut self, marker: &str) -> Result<&'a str, ParseError> {
        let start = self.pos;
        while self.pos < self.input.len() {
            if self.starts_with(marker) {
                let s = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8"))?;
                self.pos += marker.len();
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.error(format!("unterminated section, expected {marker:?}")))
    }

    fn name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if is_name_start(b) => self.pos += 1,
            _ => return Err(self.error("expected a name")),
        }
        while matches!(self.peek(), Some(b) if is_name_char(b)) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| self.error("invalid UTF-8"))
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || matches!(b, b'-' | b'.' | b':')
}

/// Decodes entity and character references in `raw`.
fn decode_entities(raw: &str, sc: &Scanner<'_>) -> Result<String, ParseError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| sc.error("unterminated entity reference"))?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| sc.error(format!("bad character reference &{entity};")))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| sc.error(format!("invalid code point {code:#x}")))?,
                );
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| sc.error(format!("bad character reference &{entity};")))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| sc.error(format!("invalid code point {code}")))?,
                );
            }
            _ => return Err(sc.error(format!("unknown entity &{entity};"))),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Parses one XML document named `name` from `input`.
///
/// Tag names are interned into `tags`; anchors and links are extracted with
/// `spec`.
pub fn parse_document(
    name: impl Into<String>,
    input: &str,
    tags: &mut TagInterner,
    spec: &LinkSpec,
) -> Result<Document, ParseError> {
    let mut sc = Scanner::new(input);
    let mut doc = Document::new(name);
    let mut stack: Vec<(LocalId, String)> = Vec::new();
    let mut seen_root = false;

    loop {
        // Text run up to the next markup (or EOF).
        let text_start = sc.pos;
        while sc.peek().is_some() && sc.peek() != Some(b'<') {
            sc.pos += 1;
        }
        if sc.pos > text_start {
            let raw = std::str::from_utf8(&sc.input[text_start..sc.pos])
                .map_err(|_| sc.error("invalid UTF-8"))?;
            let decoded = decode_entities(raw, &sc)?;
            let trimmed = decoded.trim();
            if !trimmed.is_empty() {
                match stack.last() {
                    Some(&(el, _)) => doc.append_text(el, trimmed),
                    None => return Err(sc.error("text outside the root element")),
                }
            }
        }
        if sc.peek().is_none() {
            break;
        }

        if sc.eat("<!--") {
            sc.take_until("-->")?;
        } else if sc.eat("<![CDATA[") {
            let cdata = sc.take_until("]]>")?;
            match stack.last() {
                Some(&(el, _)) => doc.append_text(el, cdata),
                None => {
                    if !cdata.trim().is_empty() {
                        return Err(sc.error("CDATA outside the root element"));
                    }
                }
            }
        } else if sc.starts_with("<!DOCTYPE") || sc.starts_with("<!doctype") {
            sc.pos += "<!DOCTYPE".len();
            // Skip to the matching '>', honouring an internal subset.
            let mut depth = 1;
            loop {
                match sc.bump() {
                    Some(b'<') => depth += 1,
                    Some(b'>') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Some(_) => {}
                    None => return Err(sc.error("unterminated DOCTYPE")),
                }
            }
        } else if sc.eat("<?") {
            sc.take_until("?>")?;
        } else if sc.eat("</") {
            let tag = sc.name()?.to_string();
            sc.skip_ws();
            sc.expect(">")?;
            match stack.pop() {
                Some((_, open)) if open == tag => {}
                Some((_, open)) => {
                    return Err(sc.error(format!("mismatched close: <{open}> vs </{tag}>")))
                }
                None => return Err(sc.error(format!("unmatched closing tag </{tag}>"))),
            }
        } else if sc.eat("<") {
            let tag = sc.name()?.to_string();
            let parent = stack.last().map(|&(el, _)| el);
            if parent.is_none() {
                if seen_root {
                    return Err(sc.error("multiple root elements"));
                }
                seen_root = true;
            }
            let tag_id = tags.intern(&tag);
            let el = doc.add_element(tag_id, parent);
            // Attributes.
            loop {
                sc.skip_ws();
                match sc.peek() {
                    Some(b'>') => {
                        sc.pos += 1;
                        stack.push((el, tag));
                        break;
                    }
                    Some(b'/') => {
                        sc.pos += 1;
                        sc.expect(">")?;
                        break;
                    }
                    Some(b) if is_name_start(b) => {
                        let attr = sc.name()?.to_string();
                        sc.skip_ws();
                        sc.expect("=")?;
                        sc.skip_ws();
                        let quote = match sc.bump() {
                            Some(q @ (b'"' | b'\'')) => q,
                            _ => return Err(sc.error("expected quoted attribute value")),
                        };
                        let marker = if quote == b'"' { "\"" } else { "'" };
                        let raw = sc.take_until(marker)?;
                        let value = decode_entities(raw, &sc)?;
                        doc.set_attr(el, attr, value);
                    }
                    _ => return Err(sc.error("malformed start tag")),
                }
            }
        } else {
            return Err(sc.error("unexpected character"));
        }

        if stack.is_empty() && seen_root {
            // After the root closes only misc content may follow.
            sc.skip_ws();
            if sc.peek().is_none() {
                break;
            }
            if !(sc.starts_with("<!--") || sc.starts_with("<?")) {
                return Err(sc.error("content after the root element"));
            }
        }
    }

    if !stack.is_empty() {
        let open: Vec<&str> = stack.iter().map(|(_, t)| t.as_str()).collect();
        return Err(sc.error(format!("unclosed elements: {}", open.join(", "))));
    }
    if !seen_root {
        return Err(sc.error("document has no root element"));
    }
    doc.extract_links(spec);
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(input: &str) -> Result<(Document, TagInterner), ParseError> {
        let mut tags = TagInterner::new();
        let doc = parse_document("t.xml", input, &mut tags, &LinkSpec::default())?;
        Ok((doc, tags))
    }

    #[test]
    fn minimal_document() {
        let (doc, tags) = parse("<a/>").unwrap();
        assert_eq!(doc.len(), 1);
        assert_eq!(tags.name(doc.element(0).tag), "a");
    }

    #[test]
    fn nested_elements_and_text() {
        let (doc, tags) = parse("<a><b>hello</b><c>world</c></a>").unwrap();
        assert_eq!(doc.len(), 3);
        assert_eq!(doc.children(0).len(), 2);
        let b = doc.children(0)[0];
        assert_eq!(tags.name(doc.element(b).tag), "b");
        assert_eq!(doc.element(b).text, "hello");
    }

    #[test]
    fn attributes_both_quote_styles() {
        let (doc, _) = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(doc.element(0).attr("x"), Some("1"));
        assert_eq!(doc.element(0).attr("y"), Some("two"));
        assert_eq!(doc.element(0).attr("z"), None);
    }

    #[test]
    fn prolog_comment_pi_doctype() {
        let input = "<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ELEMENT a ANY>]>\n<!-- hi -->\n<a><?target data?><!-- inner --></a>\n<!-- trailing -->";
        let (doc, _) = parse(input).unwrap();
        assert_eq!(doc.len(), 1);
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let (doc, _) = parse(r#"<a t="&lt;x&gt; &amp; &#65;&#x42;">a &quot;b&apos;</a>"#).unwrap();
        assert_eq!(doc.element(0).attr("t"), Some("<x> & AB"));
        assert_eq!(doc.element(0).text, "a \"b'");
    }

    #[test]
    fn cdata_kept_verbatim() {
        let (doc, _) = parse("<a><![CDATA[1 < 2 && x]]></a>").unwrap();
        assert_eq!(doc.element(0).text, "1 < 2 && x");
    }

    #[test]
    fn links_extracted() {
        let input =
            r#"<paper><sec id="s1"/><cite xlink:href="other.xml#s9"/><see idref="s1"/></paper>"#;
        let (doc, _) = parse(input).unwrap();
        assert_eq!(doc.anchor("s1"), Some(1));
        assert_eq!(doc.links().len(), 2);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn unclosed_rejected_with_position() {
        let err = parse("<a>\n<b>").unwrap_err();
        assert!(err.message.contains("unclosed"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn multiple_roots_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(
            err.message.contains("multiple root") || err.message.contains("after the root"),
            "{err}"
        );
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(parse("hello<a/>").is_err());
        assert!(parse("<a/>trailing").is_err());
    }

    #[test]
    fn unknown_entity_rejected() {
        let err = parse("<a>&nope;</a>").unwrap_err();
        assert!(err.message.contains("unknown entity"), "{err}");
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse("").is_err());
        assert!(parse("   \n  ").is_err());
    }

    #[test]
    fn namespaced_names_kept_verbatim() {
        let (doc, tags) = parse(r#"<x:a xmlns:x="u"><x:b/></x:a>"#).unwrap();
        assert_eq!(tags.name(doc.element(0).tag), "x:a");
        assert_eq!(tags.name(doc.element(1).tag), "x:b");
    }

    #[test]
    fn whitespace_only_text_ignored() {
        let (doc, _) = parse("<a>\n  <b/>\n  \n</a>").unwrap();
        assert_eq!(doc.element(0).text, "");
    }
}
