//! Link-recognition conventions.
//!
//! The XML standard offers several mechanisms to point from one element to
//! another: DTD-typed `id`/`idref`/`idrefs` attributes for intra-document
//! links, and XLink `href` attributes (`xlink:href`) for intra- or
//! inter-document links. [`LinkSpec`] captures which attribute names are
//! interpreted which way; the defaults match the paper's setting.

use serde::{Deserialize, Serialize};

/// Where a link points: a document (by name) and optionally a fragment
/// (the value of an `id` attribute inside that document).
///
/// `document == None` means "this same document".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkTarget {
    /// Target document name, `None` for the containing document.
    pub document: Option<String>,
    /// Fragment (anchor id); `None` addresses the document root.
    pub fragment: Option<String>,
}

impl LinkTarget {
    /// Parses an href value of the form `doc`, `doc#frag`, or `#frag`.
    ///
    /// Returns `None` for empty hrefs, which carry no link.
    pub fn parse_href(href: &str) -> Option<Self> {
        let href = href.trim();
        if href.is_empty() {
            return None;
        }
        let (doc, frag) = match href.split_once('#') {
            Some((d, f)) => (d, Some(f)),
            None => (href, None),
        };
        let document = (!doc.is_empty()).then(|| doc.to_string());
        let fragment = frag.filter(|f| !f.is_empty()).map(str::to_string);
        if document.is_none() && fragment.is_none() {
            return None;
        }
        Some(Self { document, fragment })
    }
}

/// Attribute conventions used to extract anchors and links from documents.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Attribute defining an element anchor (default `id`).
    pub id_attr: String,
    /// Attributes whose value names one anchor in the same document.
    pub idref_attrs: Vec<String>,
    /// Attributes whose value is a whitespace-separated anchor list.
    pub idrefs_attrs: Vec<String>,
    /// Attributes carrying `doc#frag` hrefs (XLink style).
    pub href_attrs: Vec<String>,
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self {
            id_attr: "id".into(),
            idref_attrs: vec!["idref".into()],
            idrefs_attrs: vec!["idrefs".into()],
            href_attrs: vec!["xlink:href".into(), "href".into()],
        }
    }
}

impl LinkSpec {
    /// Extracts all link targets an attribute contributes, if any.
    pub fn targets_of(&self, attr_name: &str, attr_value: &str) -> Vec<LinkTarget> {
        if self.idref_attrs.iter().any(|a| a == attr_name) {
            let v = attr_value.trim();
            if v.is_empty() {
                return Vec::new();
            }
            return vec![LinkTarget {
                document: None,
                fragment: Some(v.to_string()),
            }];
        }
        if self.idrefs_attrs.iter().any(|a| a == attr_name) {
            return attr_value
                .split_whitespace()
                .map(|v| LinkTarget {
                    document: None,
                    fragment: Some(v.to_string()),
                })
                .collect();
        }
        if self.href_attrs.iter().any(|a| a == attr_name) {
            return LinkTarget::parse_href(attr_value).into_iter().collect();
        }
        Vec::new()
    }

    /// True if `attr_name` declares an anchor.
    pub fn is_anchor(&self, attr_name: &str) -> bool {
        attr_name == self.id_attr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_href_variants() {
        assert_eq!(
            LinkTarget::parse_href("a.xml#e5"),
            Some(LinkTarget {
                document: Some("a.xml".into()),
                fragment: Some("e5".into())
            })
        );
        assert_eq!(
            LinkTarget::parse_href("a.xml"),
            Some(LinkTarget {
                document: Some("a.xml".into()),
                fragment: None
            })
        );
        assert_eq!(
            LinkTarget::parse_href("#frag"),
            Some(LinkTarget {
                document: None,
                fragment: Some("frag".into())
            })
        );
        assert_eq!(LinkTarget::parse_href(""), None);
        assert_eq!(LinkTarget::parse_href("#"), None);
        assert_eq!(LinkTarget::parse_href("  doc#f  "), {
            Some(LinkTarget {
                document: Some("doc".into()),
                fragment: Some("f".into()),
            })
        });
    }

    #[test]
    fn idref_single_target() {
        let spec = LinkSpec::default();
        let t = spec.targets_of("idref", "x1");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].fragment.as_deref(), Some("x1"));
        assert_eq!(t[0].document, None);
        assert!(spec.targets_of("idref", "   ").is_empty());
    }

    #[test]
    fn idrefs_splits_whitespace() {
        let spec = LinkSpec::default();
        let t = spec.targets_of("idrefs", "a  b\tc");
        assert_eq!(t.len(), 3);
        assert_eq!(t[2].fragment.as_deref(), Some("c"));
    }

    #[test]
    fn href_attrs_recognised() {
        let spec = LinkSpec::default();
        assert_eq!(spec.targets_of("xlink:href", "d.xml#a").len(), 1);
        assert_eq!(spec.targets_of("href", "d.xml").len(), 1);
        assert!(spec.targets_of("class", "d.xml").is_empty());
    }

    #[test]
    fn anchor_detection() {
        let spec = LinkSpec::default();
        assert!(spec.is_anchor("id"));
        assert!(!spec.is_anchor("idref"));
    }
}
