//! Per-index query microbenchmarks: reachability probes, distance lookups,
//! and descendants-by-tag enumeration on the same subgraph, across the
//! three path-indexing strategies FliX composes.

use bench::paper_corpus;
use criterion::{criterion_group, criterion_main, Criterion};
use graphcore::NodeId;

fn bench_probe_and_enumerate(c: &mut Criterion) {
    let cg = paper_corpus(0.05);
    let labels: Vec<u32> = (0..cg.node_count() as u32).map(|u| cg.tag_of(u)).collect();
    let g = &cg.graph;
    let hopi = hopi::HopiIndex::build(g, &labels);
    let apex = apex::ApexIndex::build(g, &labels, 1);
    let xppo = ppo::ExtendedPpo::build(g, &labels);

    // A probe workload: pairs spread over the graph, half within reach.
    let pairs: Vec<(NodeId, NodeId)> = (0..64u32)
        .map(|i| {
            let u = (i * 2654435761 % cg.node_count() as u32) as NodeId;
            let v = (i * 40503 % cg.node_count() as u32) as NodeId;
            (u, v)
        })
        .collect();
    let title = cg.collection.tags.get("title").unwrap();
    let starts: Vec<NodeId> = (0..32)
        .map(|d| cg.doc_root(d * (cg.collection.doc_count() as u32 / 32).max(1)))
        .collect();

    let mut group = c.benchmark_group("reachability_probe");
    group.bench_function("hopi", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(u, v)| hopi.is_reachable(u, v))
                .count()
        })
    });
    group.bench_function("apex", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(u, v)| apex.is_reachable(u, v))
                .count()
        })
    });
    group.bench_function("ppo_forest", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|&&(u, v)| xppo.is_descendant_or_self(u, v))
                .count()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("descendants_by_tag");
    group.sample_size(20);
    group.bench_function("hopi", |b| {
        b.iter(|| {
            starts
                .iter()
                .map(|&s| hopi.descendants_by_label(s, title, false).len())
                .sum::<usize>()
        })
    });
    group.bench_function("apex", |b| {
        b.iter(|| {
            starts
                .iter()
                .map(|&s| apex.descendants_by_label(s, title, false).len())
                .sum::<usize>()
        })
    });
    group.bench_function("ppo_forest", |b| {
        b.iter(|| {
            starts
                .iter()
                .map(|&s| xppo.descendants_by_label(s, title, false).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // short windows keep `cargo bench --workspace` to a few minutes
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_probe_and_enumerate
}
criterion_main!(benches);
