//! Index-construction benchmarks: each path index alone, then the full
//! FliX build phase per configuration (Table-1 companion).

use bench::{paper_configs, paper_corpus};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flix::Flix;

fn bench_single_indexes(c: &mut Criterion) {
    let cg = paper_corpus(0.05);
    let labels: Vec<u32> = (0..cg.node_count() as u32).map(|u| cg.tag_of(u)).collect();
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("ppo_extended", |b| {
        b.iter(|| ppo::ExtendedPpo::build(&cg.graph, &labels))
    });
    group.bench_function("hopi_labels", |b| {
        b.iter(|| hopi::HopiIndex::build(&cg.graph, &labels))
    });
    group.bench_function("apex_refine1", |b| {
        b.iter(|| apex::ApexIndex::build(&cg.graph, &labels, 1))
    });
    group.finish();
}

fn bench_flix_build(c: &mut Criterion) {
    let cg = paper_corpus(0.05);
    let mut group = c.benchmark_group("flix_build");
    group.sample_size(10);
    for config in paper_configs() {
        group.bench_with_input(
            BenchmarkId::from_parameter(config.to_string()),
            &config,
            |b, &config| b.iter(|| Flix::build(cg.clone(), config)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // short windows keep `cargo bench --workspace` to a few minutes
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_single_indexes, bench_flix_build
}
criterion_main!(benches);
