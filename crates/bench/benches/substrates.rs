//! Substrate microbenchmarks: XML parse/serialise throughput, the binary
//! codec, and the storage engine — the layers under every experiment.

use bench::paper_corpus;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pagestore::{BlobStore, BufferPool, HeapTable, MemDisk};
use std::sync::Arc;
use xmlgraph::{parse_document, write_document, LinkSpec, TagInterner};

fn bench_xml(c: &mut Criterion) {
    let cg = paper_corpus(0.02);
    // serialise the whole corpus once; reparse it per iteration
    let texts: Vec<String> = cg
        .collection
        .docs()
        .map(|(_, d)| write_document(d, &cg.collection.tags))
        .collect();
    let bytes: usize = texts.iter().map(String::len).sum();

    let mut group = c.benchmark_group("xml");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("parse_corpus", |b| {
        b.iter(|| {
            let mut tags = TagInterner::new();
            let spec = LinkSpec::default();
            texts
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    parse_document(format!("d{i}.xml"), t, &mut tags, &spec)
                        .expect("well-formed")
                        .len()
                })
                .sum::<usize>()
        })
    });
    group.bench_function("write_corpus", |b| {
        b.iter(|| {
            cg.collection
                .docs()
                .map(|(_, d)| write_document(d, &cg.collection.tags).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_codec_and_store(c: &mut Criterion) {
    let cg = paper_corpus(0.02);
    let labels: Vec<u32> = (0..cg.node_count() as u32).map(|u| cg.tag_of(u)).collect();
    let idx = hopi::HopiIndex::build(&cg.graph, &labels);
    let image = pagestore::to_bytes(&idx).expect("encodes");

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(image.len() as u64));
    group.bench_function("encode_hopi_image", |b| {
        b.iter(|| pagestore::to_bytes(&idx).unwrap().len())
    });
    group.bench_function("decode_hopi_image", |b| {
        b.iter(|| {
            let back: hopi::HopiIndex = pagestore::from_bytes(&image).unwrap();
            back.node_count()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("pagestore");
    group.bench_function("heap_insert_1k", |b| {
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
            let mut t = HeapTable::create(pool);
            for i in 0..1000u32 {
                t.insert(&i.to_le_bytes()).unwrap();
            }
            t.pages().len()
        })
    });
    group.bench_function("blob_round_trip_1mb", |b| {
        let data = vec![7u8; 1 << 20];
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 256));
            let mut s = BlobStore::new(pool);
            s.put("x", &data).unwrap();
            s.get("x").unwrap().unwrap().len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // short windows keep `cargo bench --workspace` to a few minutes
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_xml, bench_codec_and_store
}
criterion_main!(benches);
