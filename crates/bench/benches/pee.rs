//! Path-expression-evaluator benchmarks: full descendants enumeration,
//! top-k early termination, and connection tests per FliX configuration —
//! the Figure-5 companion.

use bench::{figure5_start, figure5_tag, paper_configs, paper_corpus};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flix::{Flix, QueryOptions};
use std::sync::Arc;
use workloads::connection_pairs;

fn bench_pee(c: &mut Criterion) {
    let cg = paper_corpus(0.05);
    let start = figure5_start(&cg);
    let tag = figure5_tag(&cg);
    let pairs = connection_pairs(&cg, 8, 5);
    let frameworks: Vec<(String, Arc<Flix>)> = paper_configs()
        .into_iter()
        .map(|cfg| (cfg.to_string(), Arc::new(Flix::build(cg.clone(), cfg))))
        .collect();

    let mut group = c.benchmark_group("descendants_full");
    group.sample_size(20);
    for (name, flix) in &frameworks {
        group.bench_with_input(BenchmarkId::from_parameter(name), flix, |b, flix| {
            b.iter(|| {
                flix.find_descendants(start, tag, &QueryOptions::default())
                    .len()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("descendants_top10");
    for (name, flix) in &frameworks {
        group.bench_with_input(BenchmarkId::from_parameter(name), flix, |b, flix| {
            b.iter(|| {
                flix.find_descendants(start, tag, &QueryOptions::top_k(10))
                    .len()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("connection_test");
    group.sample_size(20);
    for (name, flix) in &frameworks {
        group.bench_with_input(BenchmarkId::from_parameter(name), flix, |b, flix| {
            b.iter(|| {
                pairs
                    .iter()
                    .filter(|p| {
                        flix.connection_test(p.from, p.to, &QueryOptions::default())
                            .is_some()
                    })
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // short windows keep `cargo bench --workspace` to a few minutes
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_pee
}
criterion_main!(benches);
