//! Reproduces every table and figure of the FliX paper's evaluation (§6).
//!
//! ```text
//! cargo run -p bench --bin repro --release -- all
//! cargo run -p bench --bin repro --release -- table1 [--scale 0.25]
//! ```
//!
//! Subcommands: `table1`, `figure5`, `errors`, `connect`, `hybrid`,
//! `ablation-partition`, `ablation-dedup`, `query`, `build`, `hopi`,
//! `serve`, `trace`, `all`. The default corpus is the paper's scale
//! (6,210 documents); `--scale F` shrinks it.
//!
//! `query` exercises the query-path observability layer: every strategy
//! runs the same DBLP and random-cyclic workloads under one shared
//! [`flixobs::MetricsRegistry`], the table reports latency percentiles
//! straight from the histogram snapshots, the slow-query log surfaces the
//! worst traces, and the registry is persisted to `BENCH_query.json`
//! together with a Prometheus text exposition.
//!
//! `build` compares sequential vs parallel meta-document index builds,
//! prints each build's [`flix::BuildReport`], and writes the machine-
//! readable `BENCH_build.json`.
//!
//! `hopi` sweeps the staged HOPI cover pipeline's thread count over the
//! whole element graph, verifies the serialized index is byte-identical
//! at every thread count, and writes `BENCH_hopi.json`.
//!
//! `serve` drives the `flixserve` worker pool: a closed-loop worker-count
//! sweep (`--serve-threads 1,2,4,8`) over the DBLP and random-cyclic
//! workloads, an open-loop overload run at 2× measured capacity showing
//! admission-control shedding with bounded admitted latency, a deadline
//! sweep verifying every cut answer is a distance-ordered prefix of the
//! full answer, and a single-flight burst. Writes `BENCH_serve.json`.
//!
//! `--check` runs the deep [`flixcheck::IntegrityCheck`] audit over every
//! built framework (alone or alongside experiments) and exits non-zero if
//! any invariant is violated.

use bench::{
    emulated_time_to_k, error_rates, figure5_start, figure5_tag, mb, paper_configs, paper_corpus,
    rule, time_median, time_once, time_to_k_results, DbCostModel,
};
use flix::{BuildOptions, Flix, FlixConfig, QueryOptions};
use flixcheck::IntegrityCheck;
use graphcore::NodeId;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;
use workloads::{connection_pairs, descendant_queries, generate_mixed, MixedConfig};
use xmlgraph::CollectionGraph;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut check = false;
    let mut serve_threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut serve_shards: Vec<usize> = vec![1, 2, 4, 8];
    let mut commands: Vec<String> = Vec::new();
    const KNOWN: [&str; 15] = [
        "all",
        "table1",
        "figure5",
        "errors",
        "connect",
        "hybrid",
        "ablation-partition",
        "ablation-dedup",
        "figure5-disk",
        "query",
        "build",
        "hopi",
        "serve",
        "trace",
        "recover",
    ];
    const KNOWN_EXTRA: [&str; 2] = ["ablation-exact", "ablation-bidir"];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--scale" => match it.next().map(|s| s.parse::<f64>()) {
                Some(Ok(v)) if v > 0.0 && v <= 1.0 => scale = v,
                _ => {
                    eprintln!("error: --scale needs a number in (0, 1]");
                    std::process::exit(2);
                }
            },
            "--serve-threads" => {
                let parsed: Option<Vec<usize>> = it.next().and_then(|s| {
                    s.split(',')
                        .map(|t| {
                            t.trim()
                                .parse::<usize>()
                                .ok()
                                .filter(|&v| (1..=64).contains(&v))
                        })
                        .collect()
                });
                match parsed {
                    Some(v) if !v.is_empty() => serve_threads = v,
                    _ => {
                        eprintln!(
                            "error: --serve-threads needs a comma-separated list of \
                             worker counts in 1..=64 (e.g. 1,2,4,8)"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                let parsed: Option<Vec<usize>> = it.next().and_then(|s| {
                    s.split(',')
                        .map(|t| {
                            t.trim()
                                .parse::<usize>()
                                .ok()
                                .filter(|&v| (1..=64).contains(&v))
                        })
                        .collect()
                });
                match parsed {
                    Some(v) if !v.is_empty() => serve_shards = v,
                    _ => {
                        eprintln!(
                            "error: --shards needs a comma-separated list of \
                             shard counts in 1..=64 (e.g. 1,2,4,8)"
                        );
                        std::process::exit(2);
                    }
                }
            }
            other => {
                if !KNOWN.contains(&other) && !KNOWN_EXTRA.contains(&other) {
                    eprintln!(
                        "error: unknown experiment {other:?}; known: {}",
                        KNOWN
                            .iter()
                            .chain(KNOWN_EXTRA.iter())
                            .copied()
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                }
                commands.push(other.to_string());
            }
        }
    }
    if commands.is_empty() && !check {
        commands.push("all".into());
    }

    let run_all = commands.iter().any(|c| c == "all");
    let wants = |name: &str| run_all || commands.iter().any(|c| c == name);

    println!("building corpus (scale {scale}) ...");
    let (cg, gen_time) = time_once(|| paper_corpus(scale));
    let s = cg.stats();
    println!(
        "corpus: {} documents, {} elements, {} inter-document links, {:.1} MB payload (generated in {gen_time:.1?})",
        s.documents,
        s.elements,
        s.links,
        s.payload_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("paper's corpus: 6,210 documents, 168,991 elements, 25,368 links, 27 MB\n");

    let mut built: Vec<(FlixConfig, Arc<Flix>, Duration)> = Vec::new();
    for config in paper_configs() {
        let (flix, dt) = time_once(|| Flix::build(cg.clone(), config));
        println!("built {:<12} in {dt:>8.1?}", config.to_string());
        built.push((config, Arc::new(flix), dt));
    }
    println!();

    if check {
        let mut failed = false;
        println!("== integrity audit ==");
        for (config, flix, _) in &built {
            match flix.integrity_check() {
                Ok(report) => println!("{:<12} OK ({report})", config.to_string()),
                Err(err) => {
                    failed = true;
                    println!("{:<12} FAILED", config.to_string());
                    println!("{err}");
                }
            }
        }
        println!();
        if failed {
            std::process::exit(1);
        }
    }

    if wants("table1") {
        table1(&built);
    }
    if wants("figure5") {
        figure5(&cg, &built);
    }
    if wants("errors") {
        errors(&cg, &built);
    }
    if wants("connect") {
        connect(&cg, &built);
    }
    if wants("hybrid") {
        hybrid(scale);
    }
    if wants("ablation-partition") {
        ablation_partition(&cg);
    }
    if wants("ablation-dedup") {
        ablation_dedup(&cg, &built);
    }
    if wants("ablation-exact") {
        ablation_exact(&cg, &built);
    }
    if wants("ablation-bidir") {
        ablation_bidir(&cg, &built);
    }
    if wants("figure5-disk") {
        figure5_disk(&cg, &built);
    }
    if wants("query") {
        query_bench(&cg, &built, scale);
    }
    if wants("build") {
        build_bench(&cg);
    }
    if wants("hopi") {
        hopi_bench(&cg);
    }
    if wants("serve") {
        serve_bench(&cg, &built, scale, &serve_threads, &serve_shards);
    }
    if wants("trace") {
        trace_bench(&cg);
    }
    if wants("recover") {
        recover_bench();
    }
}

/// Unwraps a result in the repro harness, exiting with the binary's
/// usual `error:` style instead of a panic backtrace.
fn must<T, E: std::fmt::Display>(result: Result<T, E>, what: &str) -> T {
    match result {
        Ok(value) => value,
        Err(e) => {
            eprintln!("error: {what}: {e}");
            std::process::exit(1);
        }
    }
}

/// `recover`: the durability subsystem end to end (ISSUE 10). (a) WAL
/// commit throughput on an in-memory log and on a real fsynced file. (b)
/// Recovery time as a function of un-checkpointed log length, with the
/// replay counts from the [`pagestore::RecoveryReport`]. (c) A kill-point
/// sweep: a committed workload's log is truncated at *every byte
/// boundary* and recovered; each recovery must land byte-identically on
/// the state of the last commit whose marker survived — zero mismatches
/// tolerated. (d) A live hot swap: closed-loop clients hammer a
/// [`flixserve::FlixServer`] while a background [`flixserve::Rebuilder`]
/// rebuilds the recommended configuration and swaps it in; every answer
/// is checked against the single-generation oracle and nothing may be
/// dropped. Writes `BENCH_recovery.json`.
fn recover_bench() {
    use pagestore::{DurableStore, FileDisk, FileLog, LogDevice, MemDisk, MemLog, MemManifests};
    use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

    println!("== recover: WAL, crash recovery, and online rebuild ==");

    // -- (a) commit throughput ------------------------------------------
    let payload = vec![0xA5u8; 4096];
    let mem_commits = 512usize;
    let (mem_store, _) = durable_mem(64);
    let (mut store, report) = mem_store;
    assert_eq!(report.batches_replayed, 0);
    let (_, mem_time) = time_once(|| {
        for i in 0..mem_commits {
            must(store.put_blob(&format!("m{i}"), &payload), "mem put");
            must(store.commit(), "mem commit");
        }
    });
    let mem_cps = mem_commits as f64 / mem_time.as_secs_f64();
    println!(
        "wal commits (mem log):  {mem_commits} x 4 KiB blobs in {mem_time:.1?} ({mem_cps:.0} commits/s)"
    );

    let dir = std::env::temp_dir().join("flix-recover-bench");
    must(std::fs::create_dir_all(&dir), "temp dir");
    let db = dir.join("data.db");
    let wal_path = dir.join("wal.log");
    let _ = std::fs::remove_file(&db);
    let _ = std::fs::remove_file(&wal_path);
    let file_commits = 64usize;
    let file_cps = {
        let disk = Arc::new(must(FileDisk::open(&db), "file disk"));
        let log = Arc::new(must(FileLog::open(&wal_path), "file log"));
        let manifests = Arc::new(MemManifests::new());
        let (mut store, _) = must(
            DurableStore::open(disk, log, manifests, 64),
            "file store open",
        );
        let (_, file_time) = time_once(|| {
            for i in 0..file_commits {
                must(store.put_blob(&format!("f{i}"), &payload), "file put");
                must(store.commit(), "file commit");
            }
        });
        file_commits as f64 / file_time.as_secs_f64()
    };
    let _ = std::fs::remove_file(&db);
    let _ = std::fs::remove_file(&wal_path);
    println!(
        "wal commits (file log): {file_commits} x 4 KiB blobs, fsync per commit ({file_cps:.0} commits/s)"
    );

    // -- (b) recovery time vs log length --------------------------------
    let mut recovery_rows = String::new();
    for &batches in &[8usize, 32, 128] {
        let disk = Arc::new(MemDisk::new());
        let log = Arc::new(MemLog::new());
        let manifests = Arc::new(MemManifests::new());
        let (mut store, _) = must(
            DurableStore::open(
                disk.clone() as Arc<dyn pagestore::DiskManager>,
                log.clone(),
                manifests.clone(),
                64,
            ),
            "open",
        );
        for i in 0..batches {
            must(store.put_blob(&format!("b{i}"), &payload), "put");
            must(store.commit(), "commit");
        }
        let wal_bytes = must(log.len(), "wal length") as usize;
        drop(store);
        // Reopen over the same devices: the whole log replays.
        let crash_disk = Arc::new(MemDisk::from_frames(disk.snapshot_frames()));
        let crash_log = Arc::new(MemLog::from_bytes(log.snapshot()));
        let crash_manifests = Arc::new(MemManifests::from_snapshot(manifests.snapshot()));
        let ((_, report), dt) = time_once(|| {
            must(
                DurableStore::open(
                    crash_disk.clone() as Arc<dyn pagestore::DiskManager>,
                    crash_log,
                    crash_manifests,
                    64,
                ),
                "recover",
            )
        });
        println!(
            "recovery: {batches:>4} committed batches ({}) replayed in {dt:>8.1?} \
             ({} pages)",
            mb(wal_bytes),
            report.pages_replayed
        );
        if !recovery_rows.is_empty() {
            recovery_rows.push_str(", ");
        }
        recovery_rows.push_str(&format!(
            "{{\"batches\": {batches}, \"wal_bytes\": {wal_bytes}, \
             \"replayed\": {}, \"micros\": {}}}",
            report.batches_replayed,
            dt.as_micros()
        ));
    }

    // -- (c) kill-point sweep -------------------------------------------
    let (kill_points, kill_mismatches) = kill_point_sweep(6);
    assert_eq!(
        kill_mismatches, 0,
        "every kill point must recover the committed prefix exactly"
    );
    println!(
        "kill-point sweep: {kill_points} byte-boundary truncations, {kill_mismatches} mismatches"
    );

    // -- (d) hot swap under live traffic --------------------------------
    use flixserve::{FlixServer, RebuildConfig, Rebuilder, Request, ServeConfig};
    let (chain, tag) = chain_collection(24);
    let oracle = chain.find_descendants(0, tag, &QueryOptions::default());
    let server = Arc::new(FlixServer::start(
        Arc::clone(&chain),
        ServeConfig {
            workers: 4,
            single_flight: false,
            ..ServeConfig::default()
        },
    ));
    let rebuilder = Rebuilder::spawn(
        Arc::clone(&server),
        RebuildConfig {
            min_queries: 64,
            interval: Duration::from_millis(2),
            build_threads: 1,
        },
    );
    let answered = AtomicU64::new(0);
    let dropped = AtomicU64::new(0);
    let mismatched = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..5_000 {
                    match server.query(Request::descendants(0, tag, QueryOptions::default())) {
                        Ok(response) => {
                            answered.fetch_add(1, SeqCst);
                            if *response.results != oracle {
                                mismatched.fetch_add(1, SeqCst);
                            }
                        }
                        Err(_) => {
                            dropped.fetch_add(1, SeqCst);
                        }
                    }
                    if server.generation() > 2 {
                        break;
                    }
                }
            });
        }
    });
    rebuilder.stop();
    let generation = server.generation();
    let stats = server.stats();
    server.shutdown();
    let answered = answered.load(SeqCst);
    let dropped = dropped.load(SeqCst);
    let mismatched = mismatched.load(SeqCst);
    assert!(
        generation > 1,
        "the rebuilder must swap at least once under this load"
    );
    assert_eq!(dropped, 0, "hot swap must not drop queries");
    assert_eq!(mismatched, 0, "hot swap must not change answers");
    println!(
        "hot swap: {answered} closed-loop answers across {} swap(s) \
         (final generation {generation}), {dropped} dropped, {mismatched} mismatched",
        generation - 1
    );

    let json = format!(
        "{{\n  \"wal\": {{\"mem_commits_per_sec\": {mem_cps:.0}, \
         \"file_commits_per_sec\": {file_cps:.0}, \"blob_bytes\": {}}},\n  \
         \"recovery\": [{recovery_rows}],\n  \
         \"kill_points\": {{\"points\": {kill_points}, \"mismatches\": {kill_mismatches}}},\n  \
         \"hot_swap\": {{\"answers\": {answered}, \"dropped\": {dropped}, \
         \"mismatched\": {mismatched}, \"swaps\": {}, \"generation\": {generation}, \
         \"completed\": {}}}\n}}\n",
        payload.len(),
        generation - 1,
        stats.completed,
    );
    // flixcheck: allow(unsynced-write): bench artifact, not durable state; losing it on crash only costs a rerun
    match std::fs::write("BENCH_recovery.json", &json) {
        Ok(()) => println!("wrote BENCH_recovery.json\n"),
        Err(e) => eprintln!("warning: could not write BENCH_recovery.json: {e}"),
    }
}

/// Oracle state after a commit: directory bytes plus blob contents.
type SweepOracle = (Vec<u8>, Vec<(String, Vec<u8>)>);
/// The in-memory crash-simulation devices behind a [`pagestore::DurableStore`].
type MemDevices = (
    Arc<pagestore::MemDisk>,
    Arc<pagestore::MemLog>,
    Arc<pagestore::MemManifests>,
);

/// A fresh in-memory [`pagestore::DurableStore`] plus its devices.
fn durable_mem(
    capacity: usize,
) -> (
    (pagestore::DurableStore, pagestore::RecoveryReport),
    MemDevices,
) {
    use pagestore::{DurableStore, MemDisk, MemLog, MemManifests};
    let disk = Arc::new(MemDisk::new());
    let log = Arc::new(MemLog::new());
    let manifests = Arc::new(MemManifests::new());
    let opened = must(
        DurableStore::open(
            disk.clone() as Arc<dyn pagestore::DiskManager>,
            log.clone(),
            manifests.clone(),
            capacity,
        ),
        "mem open",
    );
    (opened, (disk, log, manifests))
}

/// Runs `commits` small-blob commits on an in-memory durable store, then
/// truncates the WAL image at every byte boundary, recovers each
/// truncation over a copy of the checkpoint-time disk, and compares the
/// recovered state against the oracle of the last surviving commit.
/// Returns (kill points tried, mismatches found).
fn kill_point_sweep(commits: usize) -> (usize, usize) {
    use pagestore::{DurableStore, LogDevice, MemDisk, MemLog, MemManifests};
    let ((mut store, _), (disk, log, manifests)) = durable_mem(16);
    // Checkpoint-time images: the crash disk every recovery starts from.
    let base_frames = disk.snapshot_frames();
    let base_manifests = manifests.snapshot();
    // Oracle state after commit n (directory bytes + blob contents);
    // index 0 is "nothing committed". `boundaries[n]` is the log length
    // once commit n's marker is durable.
    let mut oracle: Vec<SweepOracle> = vec![(store.committed_directory().to_vec(), Vec::new())];
    let mut boundaries: Vec<usize> = vec![0];
    let mut blobs: Vec<(String, Vec<u8>)> = Vec::new();
    for i in 0..commits {
        let name = format!("k{i}");
        let data = vec![i as u8 ^ 0x5A; 200 + 37 * i];
        must(store.put_blob(&name, &data), "sweep put");
        must(store.commit(), "sweep commit");
        blobs.push((name, data));
        oracle.push((store.committed_directory().to_vec(), blobs.clone()));
        boundaries.push(must(log.len(), "wal length") as usize);
    }
    let image = log.snapshot();
    let mut mismatches = 0usize;
    for cut in 0..=image.len() {
        let crash_disk = Arc::new(MemDisk::from_frames(base_frames.clone()));
        let crash_log = Arc::new(MemLog::from_bytes(image[..cut].to_vec()));
        let crash_manifests = Arc::new(MemManifests::from_snapshot(base_manifests.clone()));
        let (recovered, _) = must(
            DurableStore::open(
                crash_disk as Arc<dyn pagestore::DiskManager>,
                crash_log,
                crash_manifests,
                16,
            ),
            "sweep recover",
        );
        let survived = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        let (want_dir, want_blobs) = &oracle[survived];
        let mut ok = recovered.committed_directory() == &want_dir[..];
        if ok {
            for (name, data) in want_blobs {
                if recovered.get_blob(name).ok().flatten().as_deref() != Some(&data[..]) {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            mismatches += 1;
        }
    }
    (image.len() + 1, mismatches)
}

/// A chain of single-element documents linked head-to-tail — the
/// link-heaviest possible layout, guaranteed to trip the load monitor's
/// lookups-per-query rebuild trigger under `Naive`.
fn chain_collection(docs: usize) -> (Arc<Flix>, xmlgraph::TagId) {
    use xmlgraph::{Collection, Document, LinkTarget};
    let mut c = Collection::new();
    let t = c.tags.intern("t");
    for d in 0..docs {
        let mut doc = Document::new(format!("d{d}.xml"));
        let root = doc.add_element(t, None);
        if d + 1 < docs {
            doc.add_link(
                root,
                LinkTarget {
                    document: Some(format!("d{}.xml", d + 1)),
                    fragment: None,
                },
            );
        }
        must(c.add_document(doc), "chain doc");
    }
    let cg = Arc::new(c.seal());
    let tag = must(
        cg.collection.tags.get("t").ok_or("tag missing"),
        "chain tag",
    );
    (Arc::new(Flix::build(cg, FlixConfig::Naive)), tag)
}

/// `trace`: the flight recorder end to end (ISSUE 9). (a) Overhead: the
/// same closed-loop DBLP workload runs on an untraced and a traced server
/// (interleaved, best-of-two each) — the recorder must cost well under 5%
/// of closed-loop qps, and an untraced server must journal nothing at
/// all. (b) Causal artifact: a 4-shard traced server serves a mixed
/// workload — uncapped fan-out queries, an identical-request burst for
/// single-flight, zero-budget deadline cuts, and an adaptive admission
/// target — and its journal snapshot is exported to `trace.json`
/// (Chrome trace-event JSON; load it at <https://ui.perfetto.dev>) plus a
/// text timeline of the slowest requests. Writes `BENCH_obs.json`.
fn trace_bench(cg: &Arc<CollectionGraph>) {
    use flix::ShardedFlix;
    use flixobs::{Deadline, EventKind};
    use flixserve::{closed_loop_windowed, FlixServer, Request, ServeConfig};

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== flight recorder: overhead + causal trace export (host: {cores} cores) ==");
    let flix = Arc::new(Flix::build(Arc::clone(cg), FlixConfig::Naive));
    let opts = QueryOptions {
        max_distance: Some(2),
        ..QueryOptions::top_k(10)
    };
    let distinct: Vec<Request> = descendant_queries(cg, 192, 17)
        .into_iter()
        .map(|q| Request::descendants(q.start, q.target_tag, opts))
        .collect();
    let requests: Vec<Request> = (0..8).flat_map(|_| distinct.iter().copied()).collect();

    // (a) Overhead: same workload, recorder off vs on, interleaved runs,
    // best of two each so a stray scheduling hiccup cannot charge either
    // side. The traced server's rings are sized to wrap (drops are cheap
    // and counted); what matters is the append cost on the serve path.
    let workers = 4usize.min(cores.max(1));
    let config = ServeConfig {
        workers,
        queue_capacity: 128,
        single_flight: false,
        ..ServeConfig::default()
    };
    // Warmup (discarded): page in the index and the thread pool.
    {
        let warm = FlixServer::start(Arc::clone(&flix), config);
        closed_loop_windowed(&warm, &distinct, 2, 64);
        warm.shutdown();
    }
    let mut qps_off = 0f64;
    let mut qps_on = 0f64;
    let mut traced_events = 0u64;
    let mut traced_dropped = 0u64;
    let mut traced_wall_micros = 0u64;
    for _round in 0..3 {
        let off = FlixServer::start(Arc::clone(&flix), config);
        let report = closed_loop_windowed(&off, &requests, 2, 64);
        qps_off = qps_off.max(report.throughput_qps());
        off.shutdown();

        let on = FlixServer::start_traced(Arc::clone(&flix), config, 1 << 14);
        let report = closed_loop_windowed(&on, &requests, 2, 64);
        if report.throughput_qps() > qps_on {
            qps_on = report.throughput_qps();
            traced_events = on.recorder().map_or(0, |r| r.events_logged());
            traced_dropped = on.recorder().map_or(0, |r| r.events_dropped());
            traced_wall_micros = report.wall_micros;
        }
        on.shutdown();
    }
    let overhead_pct = (qps_off - qps_on) / qps_off.max(1e-9) * 100.0;
    let events_per_sec = traced_events as f64 / (traced_wall_micros as f64 / 1e6).max(1e-9);
    let drop_rate = traced_dropped as f64 / (traced_events as f64).max(1.0);
    println!(
        "-- recorder overhead ({} requests, {workers} workers) --",
        requests.len()
    );
    println!(
        "off {qps_off:.0} qps; on {qps_on:.0} qps -> {overhead_pct:.1}% overhead \
         ({traced_events} events journaled, {:.0} events/s, {:.1}% dropped by ring wrap)\n",
        events_per_sec,
        drop_rate * 100.0
    );

    // (b) Causal artifact: a deliberately mixed workload on a 4-shard
    // traced server, rings sized to keep every event.
    let sharded = Arc::new(ShardedFlix::new(Arc::clone(&flix), 4));
    let server = FlixServer::start_traced(
        Arc::clone(&sharded),
        ServeConfig {
            workers: 4,
            latency_target_p99_micros: Some(200),
            ..ServeConfig::default()
        },
        1 << 16,
    );
    // Uncapped queries fan out or escape across shards.
    for q in descendant_queries(cg, 48, 43) {
        // flixcheck: allow(swallowed-result): sheds are a legitimate outcome while the adaptive limit moves
        let _ = server.query(Request::descendants(
            q.start,
            q.target_tag,
            QueryOptions::default(),
        ));
    }
    // An identical-request burst exercises single-flight journal events.
    if let Some(shared_request) = distinct.first() {
        let tickets: Vec<_> = (0..12)
            .filter_map(|_| server.submit(*shared_request).ok())
            .collect();
        for ticket in tickets {
            // flixcheck: allow(swallowed-result): burst answers only feed the journal
            let _ = ticket.wait();
        }
    }
    // Zero-budget deadlines journal their expiry.
    for request in distinct.iter().take(8) {
        let req = Request {
            opts: request.opts.with_deadline(Deadline::within_micros(0)),
            ..*request
        };
        // flixcheck: allow(swallowed-result): the cut itself is the point
        let _ = server.query(req);
    }
    server.wait_idle();
    let stats = server.stats();
    let snapshot = match server.journal_snapshot() {
        Some(s) => s,
        None => {
            eprintln!("error: traced server has no journal");
            std::process::exit(1);
        }
    };
    let crossed = snapshot
        .request_ids()
        .into_iter()
        .filter(|id| {
            snapshot.request_events(*id).iter().any(|e| {
                matches!(
                    e.kind,
                    EventKind::RouteFanout { .. } | EventKind::RouteEscaped { .. }
                )
            })
        })
        .count();
    let limit_changes = snapshot
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::LimitChange { .. }))
        .count();
    let chrome = snapshot.to_chrome_trace();
    // flixcheck: allow(unsynced-write): bench artifact, not durable state; losing it on crash only costs a rerun
    match std::fs::write("trace.json", &chrome) {
        Ok(()) => println!(
            "wrote trace.json ({} events, {} cross-shard requests; open in ui.perfetto.dev)",
            snapshot.events.len(),
            crossed
        ),
        Err(e) => eprintln!("warning: could not write trace.json: {e}"),
    }
    println!(
        "adaptive admission: target p99 200us -> live limit {} (configured {}), \
         {limit_changes} journaled changes",
        stats.max_in_flight,
        ServeConfig::default().effective_max_in_flight()
    );
    let slow = server.slow_queries();
    println!("\n-- worst requests, stitched from the journal --");
    println!("{}", snapshot.worst_timelines(&slow));
    server.shutdown();

    let json = format!(
        "{{\n  \"cores\": {cores},\n  \
         \"overhead\": {{\"workers\": {workers}, \"requests\": {}, \"qps_off\": {qps_off:.1}, \
         \"qps_on\": {qps_on:.1}, \"overhead_pct\": {overhead_pct:.2}, \
         \"events_logged\": {traced_events}, \"events_per_sec\": {events_per_sec:.0}, \
         \"dropped\": {traced_dropped}, \"drop_rate\": {drop_rate:.4}}},\n  \
         \"artifact\": {{\"events\": {}, \"dropped\": {}, \"chrome_bytes\": {}, \
         \"crossed_shard_requests\": {crossed}}},\n  \
         \"adaptive\": {{\"target_p99_micros\": 200, \"final_limit\": {}, \
         \"configured_limit\": {}, \"limit_changes\": {limit_changes}}}\n}}\n",
        requests.len(),
        snapshot.events.len(),
        snapshot.dropped,
        chrome.len(),
        stats.max_in_flight,
        ServeConfig::default().effective_max_in_flight(),
    );
    // flixcheck: allow(unsynced-write): bench artifact, not durable state; losing it on crash only costs a rerun
    match std::fs::write("BENCH_obs.json", &json) {
        Ok(()) => println!("wrote BENCH_obs.json\n"),
        Err(e) => eprintln!("warning: could not write BENCH_obs.json: {e}"),
    }
}

/// `serve`: the `flixserve` concurrent query service end to end. A
/// closed-loop worker-count sweep measures throughput scaling over the
/// DBLP and random-cyclic workloads; an open-loop run at 2× measured
/// capacity shows admission control shedding instead of buffering (and
/// that the latency of *admitted* requests stays a bounded multiple of
/// the uncontended p99); a deadline sweep verifies every cut answer is a
/// distance-ordered prefix of the full answer; and a burst of identical
/// queries demonstrates single-flight collapsing. A shard-count sweep
/// (`--shards 1,2,4,8`) then serves a DBLP proximity workload over a
/// 4x-scale corpus from a [`flix::ShardedFlix`] at a fixed worker count
/// through windowed closed-loop clients, measuring the scale-out the
/// per-shard indexes buy over one shared framework. The server's metric
/// cells land in a registry and the whole run in `BENCH_serve.json`.
fn serve_bench(
    cg: &Arc<CollectionGraph>,
    built: &[(FlixConfig, Arc<Flix>, Duration)],
    scale: f64,
    threads: &[usize],
    shard_counts: &[usize],
) {
    use flix::ShardedFlix;
    use flixobs::registry::json_escape;
    use flixobs::{Deadline, MetricsRegistry};
    use flixserve::{
        closed_loop, closed_loop_windowed, open_loop, FlixServer, Request, ServeConfig,
    };
    use workloads::{generate_web, WebConfig};

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== flixserve: worker sweep, load shedding, deadlines (host: {cores} cores) ==");
    let (deployed_cfg, deployed, _) = &built[built.len() - 1];
    println!("serving the {deployed_cfg} framework; worker counts: {threads:?}");
    let registry = MetricsRegistry::new();

    let web_cfg = WebConfig {
        documents: ((120.0 * scale) as usize).max(16),
        elements_per_doc: 50,
        ..WebConfig::default()
    };
    let web_cg = Arc::new(generate_web(&web_cfg).seal());
    let web_flix = Arc::new(Flix::build(web_cg.clone(), *deployed_cfg));

    let requests_for = |corpus: &CollectionGraph, count: usize, seed: u64| -> Vec<Request> {
        descendant_queries(corpus, count, seed)
            .into_iter()
            .map(|q| Request::descendants(q.start, q.target_tag, QueryOptions::default()))
            .collect()
    };
    let dblp_requests = requests_for(cg, 48, 19);
    let web_requests = requests_for(&web_cg, 48, 29);

    // (a) Closed-loop worker sweep: K clients per worker issue-wait-repeat,
    // so offered load tracks capacity and the column to watch is qps.
    println!("\n-- closed-loop worker sweep (single-flight off: every request evaluates) --");
    rule(96);
    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>12} {:>9} {:>12} {:>12} {:>12}",
        "workload", "workers", "clients", "completed", "qps", "speedup", "p50", "p99", "queue p99"
    );
    rule(96);
    let mut sweep_entries: Vec<String> = Vec::new();
    for (workload, flix, requests) in [
        ("dblp", deployed, &dblp_requests),
        ("web", &web_flix, &web_requests),
    ] {
        let repeated: Vec<Request> = (0..8).flat_map(|_| requests.iter().copied()).collect();
        let mut base_qps: Option<f64> = None;
        for &workers in threads {
            let server = FlixServer::start(
                Arc::clone(flix),
                ServeConfig {
                    workers,
                    single_flight: false,
                    ..ServeConfig::default()
                },
            );
            let report = closed_loop(&server, &repeated, workers * 2);
            let qps = report.throughput_qps();
            let speedup = qps / base_qps.unwrap_or(qps).max(1e-9);
            base_qps.get_or_insert(qps);
            let lat = server.latency().snapshot();
            let queue = server.queue_wait().snapshot();
            println!(
                "{:<8} {:>8} {:>8} {:>10} {:>12.0} {:>8.2}x {:>12.1?} {:>12.1?} {:>12.1?}",
                workload,
                workers,
                report.clients,
                report.completed,
                qps,
                speedup,
                Duration::from_micros(lat.p50()),
                Duration::from_micros(lat.p99()),
                Duration::from_micros(queue.p99()),
            );
            sweep_entries.push(format!(
                "    {{\"workload\": \"{workload}\", \"workers\": {workers}, \
                 \"clients\": {}, \"completed\": {}, \"shed\": {}, \"qps\": {qps:.1}, \
                 \"speedup\": {speedup:.3}, \"p50_micros\": {}, \"p99_micros\": {}, \
                 \"queue_p99_micros\": {}}}",
                report.clients,
                report.completed,
                report.shed,
                lat.p50(),
                lat.p99(),
                queue.p99()
            ));
            server.shutdown();
        }
    }
    rule(96);
    println!("speedup is qps relative to the first worker count in the sweep\n");

    // (b) Overload: measure uncontended capacity closed-loop, then offer 2×
    // that rate open-loop into deliberately small queues. The controller
    // must shed the excess; what it admits must stay near the uncontended
    // latency instead of queueing toward the deadline horizon.
    let heavy: Vec<Request> = descendant_queries(&web_cg, 32, 37)
        .into_iter()
        .map(|q| Request::descendants(q.start, q.target_tag, QueryOptions::exact()))
        .collect();
    let overload_workers = 2usize;
    let baseline = FlixServer::start(
        Arc::clone(&web_flix),
        ServeConfig {
            workers: overload_workers,
            single_flight: false,
            ..ServeConfig::default()
        },
    );
    let heavy_repeated: Vec<Request> = (0..4).flat_map(|_| heavy.iter().copied()).collect();
    let base = closed_loop(&baseline, &heavy_repeated, overload_workers);
    let capacity_qps = base.throughput_qps();
    let uncontended_p99 = baseline.latency().snapshot().p99();
    baseline.shutdown();

    let overloaded = FlixServer::start(
        Arc::clone(&web_flix),
        ServeConfig {
            workers: overload_workers,
            queue_capacity: 2,
            single_flight: false,
            ..ServeConfig::default()
        },
    );
    overloaded.publish_metrics(&registry, &[("experiment", "overload")]);
    let offered_qps = capacity_qps * 2.0;
    let open_requests: Vec<Request> = heavy
        .iter()
        .cycle()
        .take(((capacity_qps as usize).clamp(64, 1200)) * 2)
        .copied()
        .collect();
    let open = open_loop(&overloaded, &open_requests, offered_qps);
    let admitted_p99 = overloaded.latency().snapshot().p99();
    let p99_ratio = admitted_p99 as f64 / (uncontended_p99 as f64).max(1.0);
    println!(
        "-- open-loop overload at 2x measured capacity ({overload_workers} workers, queue 2) --"
    );
    println!(
        "capacity {capacity_qps:.0} qps (uncontended p99 {:.1?}); offered {offered_qps:.0} qps: \
         {} admitted, {} shed ({:.0}%)",
        Duration::from_micros(uncontended_p99),
        open.admitted,
        open.shed,
        open.shed_fraction() * 100.0
    );
    println!(
        "admitted p99 {:.1?} = {p99_ratio:.1}x uncontended — bounded queues shed load instead \
         of stretching latency\n",
        Duration::from_micros(admitted_p99)
    );

    // (c) Deadlines: every cut answer must be a distance-ordered prefix of
    // the full answer; the marker tells the client which it got.
    let deadline_server = FlixServer::start(Arc::clone(&web_flix), ServeConfig::default());
    deadline_server.publish_metrics(&registry, &[("experiment", "deadline")]);
    println!("-- per-request deadlines over exact-order web queries --");
    rule(72);
    println!(
        "{:<16} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "budget", "queries", "timed out", "returned", "full size", "prefix ok"
    );
    rule(72);
    let mut deadline_entries: Vec<String> = Vec::new();
    for budget in [0u64, 50, 500, 10_000_000] {
        let mut timed_out = 0u64;
        let mut returned = 0usize;
        let mut total = 0usize;
        let mut queries = 0u64;
        let mut prefix_ok = true;
        for request in heavy.iter().take(8) {
            let oracle =
                web_flix.find_descendants(request.start, request.target, &QueryOptions::exact());
            let req = Request {
                opts: request.opts.with_deadline(Deadline::within_micros(budget)),
                ..*request
            };
            let Ok(response) = deadline_server.query(req) else {
                continue;
            };
            queries += 1;
            timed_out += u64::from(response.timed_out);
            returned += response.results.len();
            total += oracle.len();
            prefix_ok &= oracle.starts_with(&response.results)
                && response
                    .results
                    .windows(2)
                    .all(|w| w[0].distance <= w[1].distance);
        }
        assert!(
            prefix_ok,
            "a deadline-cut answer was not a distance-ordered prefix of the full answer"
        );
        println!(
            "{:<16} {:>8} {:>10} {:>12} {:>12} {:>10}",
            format!("{:.1?}", Duration::from_micros(budget)),
            queries,
            timed_out,
            returned,
            total,
            if prefix_ok { "yes" } else { "NO" }
        );
        deadline_entries.push(format!(
            "    {{\"budget_micros\": {budget}, \"queries\": {queries}, \
             \"timed_out\": {timed_out}, \"returned\": {returned}, \"full\": {total}, \
             \"prefix_ok\": {prefix_ok}}}"
        ));
    }
    rule(72);
    println!("every cut answer is a prefix of what the query would have returned in full\n");
    deadline_server.shutdown();

    // (d) Single-flight: a burst of one identical query runs the evaluator
    // once; everyone else rides the leader.
    let sf_server = FlixServer::start(
        Arc::clone(&web_flix),
        ServeConfig {
            workers: overload_workers,
            ..ServeConfig::default()
        },
    );
    let shared_request = heavy[0];
    let burst = 16usize;
    let tickets: Vec<_> = (0..burst)
        .filter_map(|_| sf_server.submit(shared_request).ok())
        .collect();
    let mut answered = 0usize;
    for ticket in tickets {
        if ticket.wait().is_ok() {
            answered += 1;
        }
    }
    sf_server.wait_idle();
    let sf_stats = sf_server.stats();
    println!(
        "-- single-flight: {burst} identical in-flight queries -> {} evaluations, \
         {} collapsed, {answered} answered --\n",
        sf_stats.completed, sf_stats.collapsed
    );

    // (e) Shard sweep: a DBLP workload, a fixed worker count, and a
    // `ShardedFlix` cut into 1..N shards. One shared framework makes every
    // worker pay the whole collection's per-query evaluator state; shard-
    // local serving pays only the owning shard's. That cliff grows with
    // the collection, so the sweep serves a 4x-scale corpus — the regime
    // the paper pitches FliX for. Top-10 proximity queries within distance
    // 2 (distance-decayed relevance cuts deep result streams off early)
    // ride a windowed closed loop, so the measurement tracks service
    // capacity instead of per-request scheduler round-trips. The column to
    // watch is qps at a fixed worker count; `fanout` counts queries routed
    // straight to the cross-shard merge, `escaped` ones whose local
    // attempt crossed a shard boundary at runtime and re-ran there.
    let shard_cg = paper_corpus(scale * 4.0);
    let (shard_naive, shard_build) =
        time_once(|| Arc::new(Flix::build(Arc::clone(&shard_cg), FlixConfig::Naive)));
    let shard_workers = 8usize;
    let shard_clients = 2usize;
    let shard_window = 128usize;
    let shard_opts = QueryOptions {
        max_distance: Some(2),
        ..QueryOptions::top_k(10)
    };
    let shard_distinct: Vec<Request> = descendant_queries(&shard_cg, 384, 43)
        .into_iter()
        .map(|q| Request::descendants(q.start, q.target_tag, shard_opts))
        .collect();
    let shard_requests: Vec<Request> = (0..16)
        .flat_map(|_| shard_distinct.iter().copied())
        .collect();
    println!(
        "-- shard sweep: Naive framework over {} DBLP documents (built in {:.1?}), \
         {shard_workers} workers --",
        shard_cg.collection.doc_count(),
        shard_build
    );
    println!(
        "   {} top-10 within-distance-2 queries ({} distinct), {shard_clients} clients x \
         {shard_window}-deep pipelines, single-flight off",
        shard_requests.len(),
        shard_distinct.len()
    );
    rule(108);
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>9} {:>10} {:>8} {:>8} {:>12} {:>12}",
        "shards",
        "groups",
        "completed",
        "qps",
        "speedup",
        "direct",
        "fanout",
        "escaped",
        "p50",
        "p99"
    );
    rule(108);
    let mut shard_entries: Vec<String> = Vec::new();
    let mut shard_qps: Vec<(usize, f64)> = Vec::new();
    for &shards in shard_counts {
        let sharded = Arc::new(ShardedFlix::new(Arc::clone(&shard_naive), shards));
        // Spot-check equivalence before timing: the sweep must be comparing
        // servers that return identical answers.
        for request in shard_distinct.iter().take(8) {
            let oracle = shard_naive.find_descendants(request.start, request.target, &request.opts);
            let got = sharded.find_descendants(request.start, request.target, &request.opts);
            assert_eq!(got, oracle, "sharded answers diverged from the oracle");
        }
        let server = FlixServer::start(
            Arc::clone(&sharded),
            ServeConfig {
                workers: shard_workers,
                queue_capacity: 128,
                single_flight: false,
                ..ServeConfig::default()
            },
        );
        if shards == shard_counts.iter().copied().max().unwrap_or(1) {
            server.publish_metrics(&registry, &[("experiment", "shard-sweep")]);
        }
        let report = closed_loop_windowed(&server, &shard_requests, shard_clients, shard_window);
        let qps = report.throughput_qps();
        let speedup = shard_qps
            .first()
            .map_or(1.0, |&(_, base)| qps / base.max(1e-9));
        let lat = server.latency().snapshot();
        let stats = sharded.stats();
        println!(
            "{:<8} {:>8} {:>10} {:>12.0} {:>8.2}x {:>10} {:>8} {:>8} {:>12.1?} {:>12.1?}",
            shards,
            server.shard_groups(),
            report.completed,
            qps,
            speedup,
            stats.direct,
            stats.fanout,
            stats.escaped,
            Duration::from_micros(lat.p50()),
            Duration::from_micros(lat.p99()),
        );
        shard_entries.push(format!(
            "    {{\"shards\": {shards}, \"groups\": {}, \"workers\": {shard_workers}, \
             \"clients\": {shard_clients}, \"window\": {shard_window}, \
             \"completed\": {}, \"shed\": {}, \"qps\": {qps:.1}, \"speedup\": {speedup:.3}, \
             \"direct\": {}, \"fanout\": {}, \"escaped\": {}, \"p50_micros\": {}, \
             \"p99_micros\": {}}}",
            server.shard_groups(),
            report.completed,
            report.shed,
            stats.direct,
            stats.fanout,
            stats.escaped,
            lat.p50(),
            lat.p99()
        ));
        shard_qps.push((shards, qps));
        server.shutdown();
    }
    rule(108);
    let qps_of = |n: usize| shard_qps.iter().find(|&&(s, _)| s == n).map(|&(_, q)| q);
    let shard_speedup = match (qps_of(1), qps_of(4)) {
        (Some(one), Some(four)) => four / one.max(1e-9),
        _ => shard_qps
            .last()
            .zip(shard_qps.first())
            .map_or(1.0, |(&(_, last), &(_, first))| last / first.max(1e-9)),
    };
    if shard_qps.len() > 1 {
        println!(
            "4-shard serving delivers {shard_speedup:.2}x the 1-shard qps at the same worker \
             count — per-shard indexes end the shared-framework scaling cliff\n"
        );
    } else {
        println!("single shard count requested; no speedup to report\n");
    }

    let snapshot = registry.snapshot();
    let snapshot_json = snapshot.to_json().replace('\n', "\n  ");
    let json = format!(
        "{{\n  \"cores\": {cores},\n  \"config\": \"{}\",\n  \"sweep\": [\n{}\n  ],\n  \
         \"overload\": {{\"workers\": {overload_workers}, \"capacity_qps\": {capacity_qps:.1}, \
         \"uncontended_p99_micros\": {uncontended_p99}, \"offered_qps\": {offered_qps:.1}, \
         \"offered\": {}, \"admitted\": {}, \"shed\": {}, \"shed_fraction\": {:.3}, \
         \"admitted_p99_micros\": {admitted_p99}, \"p99_ratio\": {p99_ratio:.2}}},\n  \
         \"deadline\": [\n{}\n  ],\n  \
         \"single_flight\": {{\"burst\": {burst}, \"evaluations\": {}, \"collapsed\": {}}},\n  \
         \"shard_sweep\": [\n{}\n  ],\n  \
         \"shard_speedup_4_over_1\": {shard_speedup:.3},\n  \
         \"snapshot\": {snapshot_json}\n}}\n",
        json_escape(&deployed_cfg.to_string()),
        sweep_entries.join(",\n"),
        open.offered,
        open.admitted,
        open.shed,
        open.shed_fraction(),
        deadline_entries.join(",\n"),
        sf_stats.completed,
        sf_stats.collapsed,
        shard_entries.join(",\n"),
    );
    // flixcheck: allow(unsynced-write): bench artifact, not durable state; losing it on crash only costs a rerun
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("wrote BENCH_serve.json\n"),
        Err(e) => eprintln!("warning: could not write BENCH_serve.json: {e}"),
    }
    overloaded.shutdown();
    sf_server.shutdown();
}

/// `hopi`: thread-count sweep of the staged HOPI cover pipeline (rank /
/// merge / parallel per-partition cover) over the whole element graph.
/// Verifies the serialized index image is byte-identical at every thread
/// count and writes `BENCH_hopi.json`.
fn hopi_bench(cg: &Arc<CollectionGraph>) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== Staged HOPI cover pipeline: thread-count sweep (host: {cores} cores) ==");
    let labels: Vec<u32> = (0..cg.node_count() as NodeId)
        .map(|u| cg.tag_of(u))
        .collect();
    rule(108);
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "threads",
        "total",
        "rank",
        "merge",
        "cover",
        "parts",
        "borders",
        "entries",
        "visits",
        "image"
    );
    rule(108);
    let mut baseline: Option<(Duration, Vec<u8>)> = None;
    let mut entries: Vec<String> = Vec::new();
    let mut best_speedup = 1.0f64;
    for threads in [1usize, 2, 4, 8] {
        let opts = hopi::CoverOptions {
            threads,
            ..hopi::CoverOptions::default()
        };
        let ((idx, stages), dt) =
            time_once(|| hopi::HopiIndex::build_staged(&cg.graph, &labels, &opts));
        let image = match pagestore::to_bytes(&idx) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: could not serialize index: {e}");
                std::process::exit(1);
            }
        };
        let identical = match &baseline {
            None => {
                baseline = Some((dt, image.clone()));
                true
            }
            Some((_, base)) => *base == image,
        };
        assert!(
            identical,
            "index image diverged at {threads} threads — staged build is not deterministic"
        );
        let seq = baseline.as_ref().map_or(dt, |(d, _)| *d);
        let speedup = seq.as_secs_f64() / dt.as_secs_f64().max(1e-9);
        best_speedup = best_speedup.max(speedup);
        println!(
            "{:<8} {:>12.1?} {:>12.1?} {:>12.1?} {:>12.1?} {:>8} {:>8} {:>10} {:>10} {:>8}",
            threads,
            dt,
            Duration::from_micros(stages.rank_micros),
            Duration::from_micros(stages.merge_micros),
            Duration::from_micros(stages.cover_micros),
            stages.partitions,
            stages.border_centers,
            idx.label_entries(),
            idx.stats().visits,
            if identical { "same" } else { "DIFF" }
        );
        entries.push(format!(
            "    {{\"threads\": {threads}, \"total_micros\": {}, \"rank_micros\": {}, \
             \"merge_micros\": {}, \"cover_micros\": {}, \"partitions\": {}, \
             \"border_centers\": {}, \"label_entries\": {}, \"image_identical\": {identical}}}",
            dt.as_micros(),
            stages.rank_micros,
            stages.merge_micros,
            stages.cover_micros,
            stages.partitions,
            stages.border_centers,
            idx.label_entries()
        ));
    }
    rule(108);
    println!(
        "the serialized index is byte-identical at every thread count; only wall clock changes\n\
         (best measured speedup over the 1-thread staged build: {best_speedup:.2}x)"
    );
    let json = format!(
        "{{\n  \"cores\": {cores},\n  \"nodes\": {},\n  \"best_speedup\": {best_speedup:.3},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        cg.node_count(),
        entries.join(",\n")
    );
    // flixcheck: allow(unsynced-write): bench artifact, not durable state; losing it on crash only costs a rerun
    match std::fs::write("BENCH_hopi.json", &json) {
        Ok(()) => println!("wrote BENCH_hopi.json\n"),
        Err(e) => eprintln!("warning: could not write BENCH_hopi.json: {e}"),
    }
}

/// `query`: the query-path observability layer end to end. Every strategy
/// runs the same DBLP and random-cyclic web workloads under one shared
/// [`flixobs::MetricsRegistry`]; the table reads latency percentiles from
/// the histogram snapshots; the slow-query log surfaces the worst traces;
/// the query cache, the index buffer pool, and the §7 load monitor publish
/// into the same registry; and the whole snapshot lands in
/// `BENCH_query.json` (percentiles per strategy plus the Prometheus text
/// exposition).
fn query_bench(cg: &Arc<CollectionGraph>, built: &[(FlixConfig, Arc<Flix>, Duration)], scale: f64) {
    use flix::{CachedFlix, DiskFlix, LoadMonitor, QueryPathMetrics, Recommendation};
    use flixobs::registry::json_escape;
    use flixobs::{MetricsRegistry, SlowQuery};
    use pagestore::{BlobStore, BufferPool, DiskManager, MemDisk};
    use std::ops::ControlFlow;
    use workloads::{generate_web, ConnectionPair, WebConfig};

    println!("== Query-path observability: metrics registry, traces, slow-query log ==");
    let registry = MetricsRegistry::new();

    // Workload 1: the paper's DBLP corpus — mixed descendant queries, the
    // Figure-5 query, and a batch of connection tests.
    let mut dblp_queries: Vec<(NodeId, u32)> = descendant_queries(cg, 24, 11)
        .into_iter()
        .map(|q| (q.start, q.target_tag))
        .collect();
    dblp_queries.push((figure5_start(cg), figure5_tag(cg)));
    let dblp_pairs = connection_pairs(cg, 12, 17);

    // Workload 2: a random-cyclic web collection — the graph shape the
    // paper's HOPI partitioning exists for.
    let web_cfg = WebConfig {
        documents: ((150.0 * scale) as usize).max(20),
        elements_per_doc: 50,
        ..WebConfig::default()
    };
    let web_cg = Arc::new(generate_web(&web_cfg).seal());
    let ws = web_cg.stats();
    println!(
        "web workload corpus: {} docs, {} elements, {} links",
        ws.documents, ws.elements, ws.links
    );
    let web_built: Vec<(FlixConfig, Arc<Flix>)> = paper_configs()
        .into_iter()
        .map(|c| (c, Arc::new(Flix::build(web_cg.clone(), c))))
        .collect();
    let web_queries: Vec<(NodeId, u32)> = descendant_queries(&web_cg, 16, 7)
        .into_iter()
        .map(|q| (q.start, q.target_tag))
        .collect();
    let web_pairs = connection_pairs(&web_cg, 8, 9);

    fn run_workload(
        flix: &Flix,
        obs: &QueryPathMetrics,
        queries: &[(NodeId, u32)],
        pairs: &[ConnectionPair],
    ) {
        for &(start, tag) in queries {
            let label = format!("{start}//tag{tag}");
            let _warm = obs.find_descendants(flix, start, tag, &QueryOptions::default(), &label);
        }
        for p in pairs {
            let label = format!("{}=>{}", p.from, p.to);
            let _warm = obs.connection_test(flix, p.from, p.to, &QueryOptions::default(), &label);
        }
    }

    let mut observed: Vec<(&'static str, String, QueryPathMetrics)> = Vec::new();
    for (config, flix, _) in built {
        let name = config.to_string();
        let obs = QueryPathMetrics::register(&registry, &[("config", &name), ("workload", "dblp")]);
        run_workload(flix, &obs, &dblp_queries, &dblp_pairs);
        observed.push(("dblp", name, obs));
    }
    for (config, flix) in &web_built {
        let name = config.to_string();
        let obs = QueryPathMetrics::register(&registry, &[("config", &name), ("workload", "web")]);
        run_workload(flix, &obs, &web_queries, &web_pairs);
        observed.push(("web", name, obs));
    }

    rule(112);
    println!(
        "{:<12} {:<6} {:>4} {:>11} {:>11} {:>11} {:>11} {:>9} {:>9} {:>9}",
        "config", "load", "q", "p50", "p95", "p99", "max", "pops/q", "rows/q", "res/q"
    );
    rule(112);
    let counter = |name: &str, config: &str, workload: &str| {
        registry
            .counter_with(name, &[("config", config), ("workload", workload)])
            .get()
    };
    for (workload, name, obs) in &observed {
        let lat = obs.latency().snapshot();
        let q = obs.queries().max(1) as f64;
        println!(
            "{:<12} {:<6} {:>4} {:>11.1?} {:>11.1?} {:>11.1?} {:>11.1?} {:>9.1} {:>9.1} {:>9.1}",
            name,
            workload,
            obs.queries(),
            Duration::from_micros(lat.p50()),
            Duration::from_micros(lat.p95()),
            Duration::from_micros(lat.p99()),
            Duration::from_micros(lat.max),
            counter("flix_entries_popped_total", name, workload) as f64 / q,
            counter("flix_rows_scanned_total", name, workload) as f64 / q,
            counter("flix_results_total", name, workload) as f64 / q,
        );
    }
    rule(112);
    println!(
        "percentiles come from the shared registry's log2-bucket histograms; the same numbers\n\
         are in BENCH_query.json and the Prometheus exposition below it\n"
    );

    // The worst traces across every strategy and workload, from the
    // per-path slow-query logs.
    let mut worst: Vec<(String, SlowQuery)> = Vec::new();
    for (workload, name, obs) in &observed {
        for sq in obs.slow_queries() {
            worst.push((format!("{name}/{workload}"), sq));
        }
    }
    worst.sort_by_key(|w| std::cmp::Reverse(w.1.trace.total_micros()));
    println!(
        "slow-query log (worst {} of {} retained traces):",
        worst.len().min(5),
        worst.len()
    );
    for (who, sq) in worst.iter().take(5) {
        println!("  [{who}] {}", sq.trace.summary());
    }
    println!();

    // A repeat-heavy client in front of the deployed strategy: the query
    // cache publishes its live counters into the same registry.
    let (deployed_cfg, deployed, _) = &built[built.len() - 1];
    let cache = CachedFlix::new(Arc::clone(deployed), 8);
    cache.publish_metrics(&registry, &[("cache", "query")]);
    for _ in 0..3 {
        for &(start, tag) in dblp_queries.iter().take(6) {
            let _warm = cache.find_descendants(start, tag, &QueryOptions::default());
        }
    }
    for &(start, tag) in dblp_queries.iter().take(12) {
        let _warm = cache.find_descendants(start, tag, &QueryOptions::default());
    }
    let cs = cache.cache_stats();
    println!(
        "query cache in front of {}: {} hits, {} misses, {} evictions, {} invalidations",
        deployed_cfg, cs.hits, cs.misses, cs.evictions, cs.invalidations
    );

    // The same strategy served from the page store through a small buffer
    // pool: pool and disk I/O counters land in the registry too.
    let disk = Arc::new(MemDisk::new());
    let pool = Arc::new(BufferPool::new(disk.clone(), 64));
    let store = BlobStore::new(pool.clone());
    match DiskFlix::save_and_open(deployed, store, "fw", 4) {
        Ok(dflix) => {
            let results = dflix
                .find_descendants(figure5_start(cg), figure5_tag(cg), &QueryOptions::default())
                .map_or(0, |r| r.len());
            pool.publish_metrics(&registry, &[("pool", "index")]);
            let ps = pool.pool_stats();
            println!(
                "disk-resident {}: {} results; pool {} hits / {} misses / {} evictions, \
                 {} pages read from disk",
                deployed_cfg,
                results,
                ps.hits,
                ps.misses,
                ps.evictions,
                disk.stats().reads
            );
        }
        Err(e) => println!("disk-resident {deployed_cfg}: persist failed: {e}"),
    }

    // §7's self-tuning loop reads the same query load the metrics describe.
    let mut monitor = LoadMonitor::new();
    for &(start, tag) in &dblp_queries {
        let mut results = 0usize;
        let stats =
            deployed.for_each_descendant_traced(start, tag, &QueryOptions::default(), |_, _| {
                results += 1;
                ControlFlow::Continue(())
            });
        monitor.record(stats, results);
    }
    monitor.publish(&registry);
    match monitor.recommend(*deployed_cfg, 10) {
        Recommendation::Keep => {
            println!(
                "load monitor: keep {deployed_cfg} (lookups/q {:.1}, rows/result {:.1})\n",
                monitor.avg_lookups(),
                monitor.rows_per_result()
            );
        }
        Recommendation::Rebuild { suggestion, reason } => {
            println!("load monitor: rebuild {deployed_cfg} as {suggestion} — {reason}\n");
        }
    }

    // Persist: per-strategy percentile entries, the full snapshot, and the
    // Prometheus text exposition (escaped into one JSON string).
    let snapshot = registry.snapshot();
    let mut entries: Vec<String> = Vec::new();
    for (workload, name, obs) in &observed {
        let lat = obs.latency().snapshot();
        entries.push(format!(
            "    {{\"config\": \"{}\", \"workload\": \"{workload}\", \"queries\": {}, \
             \"p50_micros\": {}, \"p95_micros\": {}, \"p99_micros\": {}, \"max_micros\": {}, \
             \"mean_micros\": {:.1}, \"entries_popped\": {}, \"entries_subsumed\": {}, \
             \"rows_scanned\": {}, \"links_expanded\": {}, \"results\": {}}}",
            json_escape(name),
            obs.queries(),
            lat.p50(),
            lat.p95(),
            lat.p99(),
            lat.max,
            lat.mean(),
            counter("flix_entries_popped_total", name, workload),
            counter("flix_entries_subsumed_total", name, workload),
            counter("flix_rows_scanned_total", name, workload),
            counter("flix_links_expanded_total", name, workload),
            counter("flix_results_total", name, workload),
        ));
    }
    let snapshot_json = snapshot.to_json().replace('\n', "\n  ");
    let json = format!(
        "{{\n  \"strategies\": [\n{}\n  ],\n  \"snapshot\": {snapshot_json},\n  \
         \"prometheus\": \"{}\"\n}}\n",
        entries.join(",\n"),
        json_escape(&snapshot.to_prometheus())
    );
    // flixcheck: allow(unsynced-write): bench artifact, not durable state; losing it on crash only costs a rerun
    match std::fs::write("BENCH_query.json", &json) {
        Ok(()) => println!("wrote BENCH_query.json\n"),
        Err(e) => eprintln!("warning: could not write BENCH_query.json: {e}"),
    }
}

/// `build`: sequential vs parallel per-meta index builds over every paper
/// configuration, reported from the [`flix::BuildReport`] observability
/// layer and persisted as `BENCH_build.json`.
fn build_bench(cg: &Arc<CollectionGraph>) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== Build phase: sequential vs parallel meta-document index builds ==");
    println!("host: {cores} cores (parallel uses one worker per core, capped at the meta count)");
    rule(100);
    println!(
        "{:<12} {:>7} {:>12} {:>12} {:>8} {:>8} {:>12} {:>10} {:>10}",
        "config", "metas", "seq", "par", "thrds", "speedup", "crit path", "links", "size [MB]"
    );
    rule(100);
    let mut entries: Vec<String> = Vec::new();
    let mut max_speedup = 0.0f64;
    for config in paper_configs() {
        let seq_opts = BuildOptions {
            build_threads: 1,
            ..BuildOptions::default()
        };
        let par_opts = BuildOptions {
            build_threads: 0,
            ..BuildOptions::default()
        };
        let (seq, seq_dt) = time_once(|| Flix::build_with(cg.clone(), config, &seq_opts));
        let (par, par_dt) = time_once(|| Flix::build_with(cg.clone(), config, &par_opts));
        // Thread count must never change the result.
        assert!(
            seq.runtime_links() == par.runtime_links() && seq.meta_count() == par.meta_count(),
            "parallel build diverged from sequential under {config}"
        );
        let report = par.build_report();
        let measured = seq_dt.as_secs_f64() / par_dt.as_secs_f64().max(1e-9);
        max_speedup = max_speedup.max(measured);
        println!(
            "{:<12} {:>7} {:>12.1?} {:>12.1?} {:>8} {:>7.2}x {:>12.1?} {:>10} {:>10}",
            config.to_string(),
            report.per_meta.len(),
            seq_dt,
            par_dt,
            report.threads,
            measured,
            Duration::from_micros(report.critical_path_micros()),
            report.runtime_links,
            mb(report.index_bytes())
        );
        entries.push(format!(
            "    {{\"config\": \"{config}\", \"seq_micros\": {}, \"par_micros\": {}, \
             \"measured_speedup\": {measured:.3}, \"report\": {}}}",
            seq_dt.as_micros(),
            par_dt.as_micros(),
            report.to_json()
        ));
    }
    rule(100);
    println!(
        "\"speedup\" is measured wall clock (sequential/parallel); \"crit path\" is the single\n\
         costliest meta-document build — the floor for any schedule. Frameworks are identical\n\
         regardless of thread count."
    );
    let json = format!(
        "{{\n  \"cores\": {cores},\n  \"max_speedup\": {max_speedup:.3},\n  \"configs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // flixcheck: allow(unsynced-write): bench artifact, not durable state; losing it on crash only costs a rerun
    match std::fs::write("BENCH_build.json", &json) {
        Ok(()) => println!("wrote BENCH_build.json\n"),
        Err(e) => eprintln!("warning: could not write BENCH_build.json: {e}"),
    }
}

/// Table 1: index sizes per strategy.
fn table1(built: &[(FlixConfig, Arc<Flix>, Duration)]) {
    println!("== Table 1: index sizes ==");
    println!(
        "paper (qualitative): HOPI huge >> HOPI-20000 > HOPI-5000 ≈ 2×APEX > PPO-naive ≈ MaximalPPO"
    );
    rule(78);
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "index", "size [MB]", "build", "metas", "PPO", "HOPI", "APEX"
    );
    rule(78);
    for (config, flix, dt) in built {
        let st = flix.stats();
        println!(
            "{:<12} {:>10} {:>12.1?} {:>10} {:>8} {:>8} {:>8}",
            config.to_string(),
            mb(st.index_bytes),
            *dt,
            st.meta_docs,
            st.ppo_metas,
            st.hopi_metas,
            st.apex_metas
        );
    }
    rule(78);
    println!();
}

/// Figure 5: time to return the first k results of the a//article query.
fn figure5(cg: &CollectionGraph, built: &[(FlixConfig, Arc<Flix>, Duration)]) {
    println!("== Figure 5: time to first k results of a//article ==");
    let start = figure5_start(cg);
    let tag = figure5_tag(cg);
    let (doc, _) = cg.local_of(start);
    let total = built[0]
        .1
        .find_descendants(start, tag, &QueryOptions::default())
        .len();
    println!(
        "start element: root of {:?}; {} total results",
        cg.collection.doc(doc).name,
        total
    );
    let ks = [1usize, 2, 5, 10, 20, 50, 100];
    rule(100);
    print!("{:<12}", "k");
    for k in ks {
        print!("{k:>12}");
    }
    println!();
    rule(100);
    for (config, flix, _) in built {
        // median over several runs to smooth the first-touch effects
        let mut rows: Vec<Vec<Duration>> = Vec::new();
        for _ in 0..5 {
            let series = time_to_k_results(flix, start, tag, &ks);
            rows.push(series.into_iter().map(|(_, d)| d).collect());
        }
        print!("{:<12}", config.to_string());
        for i in 0..ks.len() {
            let mut col: Vec<Duration> = rows.iter().map(|r| r[i]).collect();
            col.sort_unstable();
            print!("{:>12.1?}", col[col.len() / 2]);
        }
        println!();
    }
    rule(100);
    // The paper's absolute times are dominated by database round trips (one
    // per meta-document index lookup) and row fetches; replay the same
    // evaluations through that cost model.
    println!("DB-emulated (2 ms per index lookup, 40 µs per row — the paper's deployment):");
    rule(100);
    let model = DbCostModel::default();
    for (config, flix, _) in built {
        let series = emulated_time_to_k(flix, start, tag, &ks, model);
        print!("{:<12}", config.to_string());
        for (_, d) in series {
            print!("{d:>12.1?}");
        }
        println!();
    }
    rule(100);
    println!(
        "paper: HOPI flat (~0.6 s); HOPI-5000/20000 faster to first results; MaximalPPO fastest\n\
         first, degrading later; PPO-naive slowest throughout (absolute numbers were DB-bound).\n"
    );
}

/// §6 error rates: fraction of results returned out of distance order.
fn errors(cg: &CollectionGraph, built: &[(FlixConfig, Arc<Flix>, Duration)]) {
    println!("== Error rates (fraction of results out of ascending-distance order) ==");
    println!("paper: HOPI-5000 8.2%, HOPI-20000 10.4%, MaximalPPO 13.3%, exact indexes 0%");
    let queries: Vec<(NodeId, u32)> = {
        let mut qs: Vec<(NodeId, u32)> = descendant_queries(cg, 20, 41)
            .into_iter()
            .map(|q| (q.start, q.target_tag))
            .collect();
        qs.push((figure5_start(cg), figure5_tag(cg)));
        qs
    };
    rule(56);
    println!("{:<12} {:>16} {:>16}", "index", "order breaks", "displaced");
    rule(56);
    for (config, flix, _) in built {
        let e = error_rates(flix, cg, &queries);
        println!(
            "{:<12} {:>15.1}% {:>15.1}%",
            config.to_string(),
            e.adjacent * 100.0,
            e.displaced * 100.0
        );
    }
    rule(56);
    println!(
        "\"order breaks\" counts stream positions where distance drops (the literal reading of\n\
         \"returned in wrong order\" for a block-streamed evaluator); \"displaced\" counts every\n\
         result that any later result should have preceded.\n"
    );
}

/// §6 connection tests: same ranking trend, lower absolute numbers.
fn connect(cg: &CollectionGraph, built: &[(FlixConfig, Arc<Flix>, Duration)]) {
    println!("== Connection tests a//b ==");
    let pairs = connection_pairs(cg, 40, 17);
    let reachable = pairs.iter().filter(|p| p.reachable).count();
    println!(
        "{} pairs ({} reachable, {} unreachable)",
        pairs.len(),
        reachable,
        pairs.len() - reachable
    );
    rule(60);
    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "index", "median/query", "total", "correct"
    );
    rule(60);
    for (config, flix, _) in built {
        let mut correct = 0usize;
        let (_, total) = time_once(|| {
            for p in &pairs {
                let got = flix.connection_test(p.from, p.to, &QueryOptions::default());
                if got.is_some() == p.reachable {
                    correct += 1;
                }
            }
        });
        let median = time_median(3, || {
            for p in pairs.iter().take(8) {
                let _warm = flix.connection_test(p.from, p.to, &QueryOptions::default());
            }
        }) / 8;
        println!(
            "{:<12} {:>14.1?} {:>14.1?} {:>7}/{}",
            config.to_string(),
            median,
            total,
            correct,
            pairs.len()
        );
    }
    rule(60);
    println!("paper: same performance trend as Figure 5, lower absolute numbers\n");
}

/// Figure 1/3 qualitative check: on a mixed collection the Hybrid
/// configuration uses PPO for the tree region and HOPI for the dense one.
fn hybrid(scale: f64) {
    println!("== Hybrid partitioning on a mixed collection (paper Fig. 1) ==");
    let cfg = MixedConfig {
        trees: workloads::TreeConfig {
            documents: ((200.0 * scale) as usize).max(20),
            elements_per_doc: 80,
            ..workloads::TreeConfig::default()
        },
        web: workloads::WebConfig {
            documents: ((120.0 * scale) as usize).max(12),
            elements_per_doc: 60,
            ..workloads::WebConfig::default()
        },
        bridge_links: 10,
        seed: 3,
    };
    let cg = Arc::new(generate_mixed(&cfg).seal());
    let s = cg.stats();
    println!(
        "mixed corpus: {} docs, {} elements, {} links",
        s.documents, s.elements, s.links
    );
    rule(70);
    println!(
        "{:<14} {:>10} {:>8} {:>8} {:>8} {:>12}",
        "config", "size [MB]", "PPO", "HOPI", "APEX", "query"
    );
    rule(70);
    let tag = cg.collection.tags.get("t0").unwrap();
    let start = cg.doc_root(0);
    for config in [
        FlixConfig::Hybrid {
            partition_size: 5_000,
        },
        FlixConfig::MaximalPpo,
        FlixConfig::UnconnectedHopi {
            partition_size: 5_000,
        },
        FlixConfig::Naive,
    ] {
        let flix = Flix::build(cg.clone(), config);
        let st = flix.stats();
        let q = time_median(5, || {
            let _warm = flix.find_descendants(start, tag, &QueryOptions::default());
        });
        println!(
            "{:<14} {:>10} {:>8} {:>8} {:>8} {:>12.1?}",
            config.to_string(),
            mb(st.index_bytes),
            st.ppo_metas,
            st.hopi_metas,
            st.apex_metas,
            q
        );
    }
    rule(70);
    println!("expected: Hybrid mixes PPO metas (tree region) with HOPI metas (web region)\n");
}

/// Ablation A: Unconnected-HOPI partition-size sweep.
fn ablation_partition(cg: &Arc<CollectionGraph>) {
    println!("== Ablation A: partition size vs build/size/query (Unconnected HOPI) ==");
    let start = figure5_start(cg);
    let tag = figure5_tag(cg);
    rule(86);
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "cap", "metas", "size [MB]", "build", "full query", "top-10", "runtime links"
    );
    rule(86);
    for cap in [1_000usize, 2_000, 5_000, 10_000, 20_000, 50_000] {
        let (flix, build) = time_once(|| {
            Flix::build(
                cg.clone(),
                FlixConfig::UnconnectedHopi {
                    partition_size: cap,
                },
            )
        });
        let st = flix.stats();
        let full = time_median(3, || {
            let _warm = flix.find_descendants(start, tag, &QueryOptions::default());
        });
        let topk = time_median(3, || {
            let _warm = flix.find_descendants(start, tag, &QueryOptions::top_k(10));
        });
        println!(
            "{:<10} {:>8} {:>10} {:>12.1?} {:>12.1?} {:>12.1?} {:>12}",
            cap,
            st.meta_docs,
            mb(st.index_bytes),
            build,
            full,
            topk,
            st.runtime_links
        );
    }
    rule(86);
    println!("expected: bigger partitions -> fewer runtime links, bigger labels, slower build\n");
}

/// Ablation B: entry-point duplicate elimination (§5.1) vs remembering
/// every returned result.
fn ablation_dedup(cg: &CollectionGraph, built: &[(FlixConfig, Arc<Flix>, Duration)]) {
    println!("== Ablation B: §5.1 entry-point dedup vs naive full-result dedup ==");
    let start = figure5_start(cg);
    let tag = figure5_tag(cg);
    rule(78);
    println!(
        "{:<12} {:>14} {:>14} {:>16} {:>16}",
        "config", "entry-point", "naive dedup", "dedup-set size", "results"
    );
    rule(78);
    for (config, flix, _) in built {
        if matches!(config, FlixConfig::Monolithic(_)) {
            continue; // no cross-meta traversal, nothing to deduplicate
        }
        let fast = time_median(3, || {
            let _warm = flix.find_descendants(start, tag, &QueryOptions::default());
        });
        let mut set_size = 0usize;
        let mut results = 0usize;
        let naive = time_median(3, || {
            let (r, s) = naive_dedup_descendants(flix, start, tag);
            results = r;
            set_size = s;
        });
        println!(
            "{:<12} {:>14.1?} {:>14.1?} {:>16} {:>16}",
            config.to_string(),
            fast,
            naive,
            set_size,
            results
        );
    }
    rule(78);
    println!(
        "the naive variant keeps every returned node in memory; §5.1 keeps entry points only\n"
    );
}

/// Figure 5 over disk-resident indexes: the Fig. 4 loop loading meta
/// documents from the page store on demand, reporting real page I/O.
fn figure5_disk(cg: &CollectionGraph, built: &[(FlixConfig, Arc<Flix>, Duration)]) {
    use flix::DiskFlix;
    use pagestore::{BlobStore, BufferPool, DiskManager, MemDisk};

    println!("== Figure 5 (disk-resident): a//article with on-demand index loads ==");
    let start = figure5_start(cg);
    let tag = figure5_tag(cg);
    rule(96);
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "config", "full query", "top-10", "page reads", "idx loads", "idx cache hit", "results"
    );
    rule(96);
    for (config, flix, _) in built {
        let disk = Arc::new(MemDisk::new());
        // pool sized well below the full index set; index cache of 8 metas
        let pool = Arc::new(BufferPool::new(disk.clone(), 128));
        let store = BlobStore::new(pool);
        let dflix = match DiskFlix::save_and_open(flix, store, "fw", 8) {
            Ok(d) => d,
            Err(e) => {
                println!("{:<12} persist failed: {e}", config.to_string());
                continue;
            }
        };
        let writes_done = disk.stats().reads;
        let (results, full) = time_once(|| {
            dflix
                .find_descendants(start, tag, &QueryOptions::default())
                .map_or(0, |r| r.len())
        });
        let (_, topk) = time_once(|| {
            dflix
                .find_descendants(start, tag, &QueryOptions::top_k(10))
                .map_or(0, |r| r.len())
        });
        let st = dflix.stats();
        let reads = disk.stats().reads - writes_done;
        let hit_rate = if st.cache_hits + st.cache_misses > 0 {
            100.0 * st.cache_hits as f64 / (st.cache_hits + st.cache_misses) as f64
        } else {
            0.0
        };
        println!(
            "{:<12} {:>12.1?} {:>12.1?} {:>12} {:>14} {:>13.1}% {:>12}",
            config.to_string(),
            full,
            topk,
            reads,
            st.cache_misses,
            hit_rate,
            results
        );
    }
    rule(96);
    println!(
        "page reads are true buffer-pool misses; the paper's absolute times were exactly this I/O
"
    );
}

/// Ablation C: the §7 exact-ordering option vs the default approximate
/// block streaming — what perfect order costs in time-to-first-result.
fn ablation_exact(cg: &CollectionGraph, built: &[(FlixConfig, Arc<Flix>, Duration)]) {
    println!("== Ablation C: approximate (default) vs exact result ordering (§7 option) ==");
    let start = figure5_start(cg);
    let tag = figure5_tag(cg);
    rule(86);
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14} {:>12}",
        "config", "approx first", "exact first", "approx full", "exact full", "breaks->0"
    );
    rule(86);
    for (config, flix, _) in built {
        if matches!(config, FlixConfig::Monolithic(_)) {
            continue; // already exact
        }
        let approx_first = time_median(5, || {
            let _warm = flix.find_descendants(start, tag, &QueryOptions::top_k(1));
        });
        let exact_first = time_median(5, || {
            let opts = QueryOptions {
                exact_order: true,
                max_results: Some(1),
                ..QueryOptions::default()
            };
            let _warm = flix.find_descendants(start, tag, &opts);
        });
        let approx_full = time_median(3, || {
            let _warm = flix.find_descendants(start, tag, &QueryOptions::default());
        });
        let exact_full = time_median(3, || {
            let _warm = flix.find_descendants(start, tag, &QueryOptions::exact());
        });
        // verify the sorted-order claim while we are here
        let res = flix.find_descendants(start, tag, &QueryOptions::exact());
        let sorted = res.windows(2).all(|w| w[0].distance <= w[1].distance);
        println!(
            "{:<12} {:>14.1?} {:>14.1?} {:>14.1?} {:>14.1?} {:>12}",
            config.to_string(),
            approx_first,
            exact_first,
            approx_full,
            exact_full,
            if sorted { "yes" } else { "NO" }
        );
    }
    rule(86);
    println!(
        "exact ordering trades time-to-first-result (and memory) for a 0% error rate
"
    );
}

/// Ablation D: unidirectional vs bidirectional connection tests (§5.2).
fn ablation_bidir(cg: &CollectionGraph, built: &[(FlixConfig, Arc<Flix>, Duration)]) {
    println!("== Ablation D: unidirectional vs bidirectional connection tests (§5.2) ==");
    let pairs = connection_pairs(cg, 24, 23);
    rule(64);
    println!(
        "{:<12} {:>16} {:>16} {:>10}",
        "config", "unidirectional", "bidirectional", "agree"
    );
    rule(64);
    for (config, flix, _) in built {
        let mut agree = 0usize;
        for p in &pairs {
            let a = flix
                .connection_test(p.from, p.to, &QueryOptions::default())
                .is_some();
            let b = flix
                .connection_test_bidirectional(p.from, p.to, &QueryOptions::default())
                .is_some();
            if a == b && a == p.reachable {
                agree += 1;
            }
        }
        let uni = time_median(3, || {
            for p in pairs.iter().take(8) {
                let _warm = flix.connection_test(p.from, p.to, &QueryOptions::default());
            }
        }) / 8;
        let bi = time_median(3, || {
            for p in pairs.iter().take(8) {
                let _warm =
                    flix.connection_test_bidirectional(p.from, p.to, &QueryOptions::default());
            }
        }) / 8;
        println!(
            "{:<12} {:>16.1?} {:>16.1?} {:>7}/{}",
            config.to_string(),
            uni,
            bi,
            agree,
            pairs.len()
        );
    }
    rule(64);
    println!(
        "the backward search wins when the target has a small ancestor cone
"
    );
}

/// The strawman the paper argues against in §5.1: chase links without
/// entry-point subsumption and deduplicate by remembering every result.
/// Returns (result count, dedup-set size).
fn naive_dedup_descendants(flix: &Flix, start: NodeId, tag: u32) -> (usize, usize) {
    let mut seen_results: HashSet<NodeId> = HashSet::new();
    let mut visited_entries: HashSet<NodeId> = HashSet::new();
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((0u32, start)));
    let mut results = 0usize;
    while let Some(std::cmp::Reverse((d, e))) = heap.pop() {
        if !visited_entries.insert(e) {
            continue;
        }
        let meta = flix.meta_of(e);
        let md = flix.meta(meta);
        let local = flix.local_of(e);
        for (r, dr) in md.index.descendants_by_label(local, tag, e != start) {
            let global = flix.global_of(meta, r);
            let _ = dr;
            if seen_results.insert(global) {
                results += 1;
            }
        }
        for (ls, dls) in md.reachable_link_sources(local) {
            let src = flix.global_of(meta, ls);
            for &(_, tgt) in flix.links_out_of(src) {
                heap.push(std::cmp::Reverse((d + dls + 1, tgt)));
            }
        }
    }
    // every result plus every entry point is retained in memory
    (results, seen_results.len() + visited_entries.len())
}
