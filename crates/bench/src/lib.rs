//! Shared harness utilities for the paper-reproduction binary and the
//! criterion benches: corpus construction, query selection, timing, the §6
//! error-rate metric, and table formatting.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use flix::{Flix, FlixConfig, PeeStats, QueryOptions, StrategyKind};
use flixobs::Stopwatch;
use graphcore::{bfs_distances, NodeId};
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::Duration;
use workloads::{generate_dblp, DblpConfig};
use xmlgraph::CollectionGraph;

/// The six strategies of the paper's §6, in Table-1 order.
pub fn paper_configs() -> Vec<FlixConfig> {
    vec![
        FlixConfig::Monolithic(StrategyKind::Hopi),
        FlixConfig::Monolithic(StrategyKind::Apex),
        FlixConfig::Naive,
        FlixConfig::UnconnectedHopi {
            partition_size: 5_000,
        },
        FlixConfig::UnconnectedHopi {
            partition_size: 20_000,
        },
        FlixConfig::MaximalPpo,
    ]
}

/// Builds the experiment corpus. `scale` of 1.0 is the paper's corpus
/// (6,210 documents); smaller factors shrink it proportionally for quick
/// runs.
pub fn paper_corpus(scale: f64) -> Arc<CollectionGraph> {
    let base = DblpConfig::paper_scale();
    let cfg = DblpConfig {
        documents: ((base.documents as f64 * scale) as usize).max(50),
        ..base
    };
    Arc::new(generate_dblp(&cfg).seal())
}

/// Selects the Figure-5 style start element: the root of a late,
/// citation-rich publication whose reachable set is large — the stand-in
/// for "Mohan's VLDB 99 paper about ARIES", whose `article` descendants
/// the paper enumerates.
pub fn figure5_start(cg: &CollectionGraph) -> NodeId {
    // The paper's query returns on the order of a hundred-plus results
    // ("up to 100 results" are plotted); pick the late publication whose
    // citation closure is closest to ~150 documents so the query has the
    // same cardinality profile. Sampling every 7th candidate keeps corpus
    // setup cheap.
    let n_docs = cg.collection.doc_count() as u32;
    let from = n_docs.saturating_sub(n_docs / 2);
    let candidates: Vec<(u32, usize)> = (from..n_docs)
        .step_by(7)
        .map(|d| {
            let dist = bfs_distances(&cg.doc_graph, d);
            (d, dist.iter().filter(|&&x| x != u32::MAX).count())
        })
        .collect();
    let doc = candidates
        .iter()
        .filter(|&&(_, reach)| (80..=600).contains(&reach))
        .max_by_key(|&&(_, reach)| reach)
        .or_else(|| candidates.iter().max_by_key(|&&(_, reach)| reach))
        .map(|&(d, _)| d)
        .expect("non-empty corpus");
    cg.doc_root(doc)
}

/// The Figure-5 target tag: the paper asks for `article` descendants; our
/// corpus roots are `article` or `inproceedings`, so we use `title`, which
/// every publication carries exactly once — same result cardinality, same
/// access pattern.
pub fn figure5_tag(cg: &CollectionGraph) -> u32 {
    cg.collection.tags.get("title").expect("corpus has titles")
}

/// Wall-clock of one closure.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Stopwatch::start();
    let r = f();
    (r, t0.elapsed())
}

/// Median wall-clock over `runs` executions (the result is discarded).
pub fn time_median(runs: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let t0 = Stopwatch::start();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Time until the first `k` results of `start//tag` arrive, for each `k`
/// in `ks` (single evaluation; timestamps recorded as results stream out).
/// A `k` beyond the result count reports the full evaluation time.
pub fn time_to_k_results(
    flix: &Flix,
    start: NodeId,
    tag: u32,
    ks: &[usize],
) -> Vec<(usize, Duration)> {
    let mut stamps: Vec<Duration> = Vec::new();
    let t0 = Stopwatch::start();
    flix.for_each_descendant(start, tag, &QueryOptions::default(), |_| {
        stamps.push(t0.elapsed());
        ControlFlow::Continue(())
    });
    let total = t0.elapsed();
    ks.iter()
        .map(|&k| {
            let d = if k == 0 {
                Duration::ZERO
            } else if k <= stamps.len() {
                stamps[k - 1]
            } else {
                total
            };
            (k, d)
        })
        .collect()
}

/// Both readings of the §6 error metric ("fraction of all results that
/// were returned in wrong order").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ErrorRates {
    /// Adjacent-descent reading: a result is wrong when its exact distance
    /// is smaller than its predecessor's — the positions where a client
    /// consuming the stream observes the order break. Block-streamed
    /// evaluation keeps this low (one break per block boundary at most).
    pub adjacent: f64,
    /// Displacement reading: a result is wrong when *any* later result has
    /// a strictly smaller exact distance (it jumped the queue). Much
    /// stricter: one deep block tail displaces en masse.
    pub displaced: f64,
}

/// Computes both §6 error metrics over a query set.
pub fn error_rates(flix: &Flix, cg: &CollectionGraph, queries: &[(NodeId, u32)]) -> ErrorRates {
    let mut total = 0usize;
    let mut adjacent = 0usize;
    let mut displaced = 0usize;
    for &(start, tag) in queries {
        let res = flix.find_descendants(start, tag, &QueryOptions::default());
        let dist = bfs_distances(&cg.graph, start);
        let exact: Vec<u32> = res.iter().map(|r| dist[r.node as usize]).collect();
        for w in exact.windows(2) {
            if w[1] < w[0] {
                adjacent += 1;
            }
        }
        let mut suffix_min = u32::MAX;
        for &d in exact.iter().rev() {
            if suffix_min < d {
                displaced += 1;
            }
            suffix_min = suffix_min.min(d);
        }
        total += exact.len();
    }
    if total == 0 {
        ErrorRates::default()
    } else {
        ErrorRates {
            adjacent: adjacent as f64 / total as f64,
            displaced: displaced as f64 / total as f64,
        }
    }
}

/// The adjacent-descent §6 error metric (headline comparison value).
pub fn error_rate(flix: &Flix, cg: &CollectionGraph, queries: &[(NodeId, u32)]) -> f64 {
    error_rates(flix, cg, queries).adjacent
}

/// A cost model for the paper's database-backed deployment: every entry pop
/// is one index lookup (a database round trip) and every block row scanned
/// is one row fetch. The paper's absolute numbers are dominated by exactly
/// these costs, which in-memory wall-clock does not show.
#[derive(Debug, Clone, Copy)]
pub struct DbCostModel {
    /// Cost per meta-document index lookup (entry pop).
    pub per_lookup: Duration,
    /// Cost per result row scanned in a block.
    pub per_row: Duration,
}

impl Default for DbCostModel {
    fn default() -> Self {
        Self {
            per_lookup: Duration::from_micros(2_000),
            per_row: Duration::from_micros(40),
        }
    }
}

impl DbCostModel {
    /// Emulated elapsed time for an evaluation snapshot.
    pub fn cost(&self, stats: PeeStats) -> Duration {
        self.per_lookup * (stats.entries_popped + stats.entries_subsumed) as u32
            + self.per_row * stats.block_results_scanned as u32
    }
}

/// DB-cost-emulated time until the first `k` results, per `k` in `ks`,
/// using the traced evaluator. Entries beyond the result count report the
/// full evaluation cost.
pub fn emulated_time_to_k(
    flix: &Flix,
    start: NodeId,
    tag: u32,
    ks: &[usize],
    model: DbCostModel,
) -> Vec<(usize, Duration)> {
    let mut snapshots: Vec<PeeStats> = Vec::new();
    let total = flix.for_each_descendant_traced(start, tag, &QueryOptions::default(), |_, st| {
        snapshots.push(st);
        ControlFlow::Continue(())
    });
    ks.iter()
        .map(|&k| {
            let st = if k == 0 {
                PeeStats::default()
            } else if k <= snapshots.len() {
                snapshots[k - 1]
            } else {
                total
            };
            (k, model.cost(st))
        })
        .collect()
}

/// Formats a byte count as megabytes with one decimal.
pub fn mb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Prints a separator line sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_scales() {
        let small = paper_corpus(0.02);
        assert!(small.collection.doc_count() >= 50);
        assert!(small.collection.doc_count() < 300);
    }

    #[test]
    fn figure5_query_has_many_results() {
        let cg = paper_corpus(0.05);
        let start = figure5_start(&cg);
        let tag = figure5_tag(&cg);
        let flix = Flix::build(cg.clone(), FlixConfig::MaximalPpo);
        let res = flix.find_descendants(start, tag, &QueryOptions::default());
        assert!(res.len() >= 10, "start element too isolated: {}", res.len());
    }

    #[test]
    fn time_to_k_monotone() {
        let cg = paper_corpus(0.02);
        let flix = Flix::build(cg.clone(), FlixConfig::Naive);
        let start = figure5_start(&cg);
        let series = time_to_k_results(&flix, start, figure5_tag(&cg), &[1, 5, 10]);
        assert_eq!(series.len(), 3);
        assert!(series.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn emulated_costs_monotone_and_flat_for_monolithic() {
        let cg = paper_corpus(0.02);
        let start = figure5_start(&cg);
        let tag = figure5_tag(&cg);
        let mono = Flix::build(cg.clone(), FlixConfig::Monolithic(StrategyKind::Hopi));
        let ks = [1usize, 10, 50];
        let series = emulated_time_to_k(&mono, start, tag, &ks, DbCostModel::default());
        assert!(series.windows(2).all(|w| w[0].1 <= w[1].1));
        // one meta document: the lookup cost is paid once, so the curve is
        // near-flat (only per-row cost grows)
        let spread = series[2].1.saturating_sub(series[0].1);
        assert!(spread < DbCostModel::default().per_lookup, "{spread:?}");
    }

    #[test]
    fn error_rate_zero_for_monolithic() {
        let cg = paper_corpus(0.02);
        let flix = Flix::build(cg.clone(), FlixConfig::Monolithic(StrategyKind::Hopi));
        let qs: Vec<(NodeId, u32)> = workloads::descendant_queries(&cg, 5, 3)
            .into_iter()
            .map(|q| (q.start, q.target_tag))
            .collect();
        assert_eq!(error_rate(&flix, &cg, &qs), 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mb(1024 * 1024), "1.0");
        assert_eq!(mb(0), "0.0");
        let (v, _) = time_once(|| 42);
        assert_eq!(v, 42);
        assert!(time_median(3, || {}) >= Duration::ZERO);
    }
}
