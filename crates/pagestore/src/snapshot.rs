//! Checkpoint snapshots: generation-numbered, CRC-protected manifests.
//!
//! A checkpoint publishes a **manifest** — the blob directory as of the
//! checkpoint plus the data-disk page count — under a monotonically
//! increasing generation number. The publication protocol is
//! write-new-then-atomic-rename: the manifest is written to a side
//! location, made durable, and only then installed under its final name.
//! The WAL is truncated strictly *after* the manifest is durable, so at
//! every instant either the old manifest + full WAL or the new manifest
//! reconstructs the committed state. A torn manifest (crash mid-publish)
//! simply fails its CRC and recovery falls back to the previous
//! generation.

use crate::wal::crc32;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::PathBuf;

/// Magic prefix of an encoded manifest (`FXSN`).
pub const MANIFEST_MAGIC: u32 = 0x4658_534E;
/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// A checkpoint manifest: everything recovery needs besides the data disk
/// and the WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotManifest {
    /// Checkpoint generation (1 for the first checkpoint; commits after
    /// this checkpoint carry this value as their WAL epoch).
    pub generation: u64,
    /// Data-disk page count at checkpoint time (informational; the disk
    /// itself is authoritative).
    pub page_count: u64,
    /// Blob directory bytes ([`crate::BlobStore::export_directory`]) of
    /// the committed state.
    pub directory: Vec<u8>,
}

impl SnapshotManifest {
    /// Serialises the manifest with magic, version, and a trailing CRC
    /// over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28 + self.directory.len() + 4);
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.page_count.to_le_bytes());
        out.extend_from_slice(&(self.directory.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.directory);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and CRC-verifies an encoded manifest. Any truncation or
    /// bit-flip yields `Err` — recovery treats that manifest as torn.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 32 {
            return Err(format!("manifest too short ({} bytes)", bytes.len()));
        }
        let body = &bytes[..bytes.len() - 4];
        let mut crc_bytes = [0u8; 4];
        crc_bytes.copy_from_slice(&bytes[bytes.len() - 4..]);
        if crc32(body) != u32::from_le_bytes(crc_bytes) {
            return Err("manifest CRC mismatch".into());
        }
        let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        if magic != MANIFEST_MAGIC {
            return Err(format!("bad manifest magic {magic:#x}"));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != MANIFEST_VERSION {
            return Err(format!("unsupported manifest version {version}"));
        }
        let mut gen = [0u8; 8];
        gen.copy_from_slice(&bytes[8..16]);
        let mut pages = [0u8; 8];
        pages.copy_from_slice(&bytes[16..24]);
        let dir_len = u32::from_le_bytes([bytes[24], bytes[25], bytes[26], bytes[27]]) as usize;
        if body.len() != 28 + dir_len {
            return Err("manifest directory length mismatch".into());
        }
        Ok(Self {
            generation: u64::from_le_bytes(gen),
            page_count: u64::from_le_bytes(pages),
            directory: bytes[28..28 + dir_len].to_vec(),
        })
    }
}

/// Storage for published manifests, keyed by generation.
///
/// `publish` must be atomic: after a crash at any point, `read` of that
/// generation either returns the complete bytes or the generation is
/// absent/invalid (recovery falls back). The file implementation gets
/// this from write-tmp + fsync + rename.
pub trait ManifestStore: Send + Sync {
    /// Atomically installs `bytes` as generation `generation`.
    fn publish(&self, generation: u64, bytes: &[u8]) -> io::Result<()>;
    /// All stored generations, ascending (including invalid/torn ones —
    /// validity is the reader's judgement via [`SnapshotManifest::decode`]).
    fn generations(&self) -> io::Result<Vec<u64>>;
    /// Raw bytes of generation `generation`.
    fn read(&self, generation: u64) -> io::Result<Vec<u8>>;
    /// Removes generation `generation` (pruning after a newer durable one).
    fn remove(&self, generation: u64) -> io::Result<()>;
}

/// In-memory manifest store.
#[derive(Default)]
pub struct MemManifests {
    slots: Mutex<BTreeMap<u64, Vec<u8>>>,
}

impl MemManifests {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A deep copy of every stored manifest (generation → raw bytes), for
    /// crash simulations that freeze the store at an instant.
    pub fn snapshot(&self) -> BTreeMap<u64, Vec<u8>> {
        self.slots.lock().clone()
    }

    /// Builds a store pre-seeded with `slots` (see [`Self::snapshot`]).
    /// Tests use this to inject torn manifests: publish a truncated copy
    /// under the same generation.
    pub fn from_snapshot(slots: BTreeMap<u64, Vec<u8>>) -> Self {
        Self {
            slots: Mutex::new(slots),
        }
    }
}

impl ManifestStore for MemManifests {
    fn publish(&self, generation: u64, bytes: &[u8]) -> io::Result<()> {
        self.slots.lock().insert(generation, bytes.to_vec());
        Ok(())
    }

    fn generations(&self) -> io::Result<Vec<u64>> {
        Ok(self.slots.lock().keys().copied().collect())
    }

    fn read(&self, generation: u64) -> io::Result<Vec<u8>> {
        self.slots
            .lock()
            .get(&generation)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such generation"))
    }

    fn remove(&self, generation: u64) -> io::Result<()> {
        self.slots.lock().remove(&generation);
        Ok(())
    }
}

/// Directory-backed manifest store: `MANIFEST-<generation>` files,
/// installed by write-tmp + fsync + atomic rename (+ directory fsync).
pub struct FileManifests {
    dir: PathBuf,
}

impl FileManifests {
    /// Opens (creating if needed) the manifest directory at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    fn path_of(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("MANIFEST-{generation:020}"))
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Renames are only durable once the directory entry is synced.
        std::fs::File::open(&self.dir)?.sync_all()
    }
}

impl ManifestStore for FileManifests {
    fn publish(&self, generation: u64, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("MANIFEST-{generation:020}.tmp"));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, self.path_of(generation))?;
        self.sync_dir()
    }

    fn generations(&self) -> io::Result<Vec<u64>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(gen) = name.strip_prefix("MANIFEST-") else {
                continue;
            };
            if let Ok(gen) = gen.parse::<u64>() {
                out.push(gen);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn read(&self, generation: u64) -> io::Result<Vec<u8>> {
        std::fs::read(self.path_of(generation))
    }

    fn remove(&self, generation: u64) -> io::Result<()> {
        std::fs::remove_file(self.path_of(generation))
    }
}

/// Scans `store` for the newest manifest that decodes and CRC-verifies,
/// skipping torn ones. `Ok(None)` when no valid manifest exists (a fresh
/// store, or every manifest is torn — recovery then replays the WAL over
/// an empty base).
pub fn latest_valid(store: &dyn ManifestStore) -> io::Result<Option<SnapshotManifest>> {
    for generation in store.generations()?.into_iter().rev() {
        let bytes = match store.read(generation) {
            Ok(bytes) => bytes,
            Err(_) => continue, // racing prune; the next older one decides
        };
        if let Ok(manifest) = SnapshotManifest::decode(&bytes) {
            return Ok(Some(manifest));
        }
    }
    Ok(None)
}

/// Removes every manifest older than `keep`. Called only after the
/// manifest at `keep` is durable *and* the WAL has been truncated, at
/// which point older generations can no longer reconstruct anything the
/// newest one doesn't.
pub fn prune_older(store: &dyn ManifestStore, keep: u64) -> io::Result<usize> {
    let mut removed = 0;
    for generation in store.generations()? {
        if generation < keep {
            store.remove(generation)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(generation: u64) -> SnapshotManifest {
        SnapshotManifest {
            generation,
            page_count: 17,
            directory: vec![generation as u8; 40],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = manifest(3);
        assert_eq!(SnapshotManifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = manifest(5).encode();
        for cut in 0..bytes.len() {
            assert!(
                SnapshotManifest::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn every_single_bitflip_is_rejected() {
        let bytes = manifest(5).encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                SnapshotManifest::decode(&bad).is_err(),
                "bit flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn latest_valid_skips_torn_manifests() {
        let store = MemManifests::new();
        store.publish(1, &manifest(1).encode()).unwrap();
        store.publish(2, &manifest(2).encode()).unwrap();
        assert_eq!(latest_valid(&store).unwrap().unwrap().generation, 2);
        // Tear generation 3 mid-write: recovery falls back to 2.
        let torn = &manifest(3).encode()[..20];
        store.publish(3, torn).unwrap();
        assert_eq!(latest_valid(&store).unwrap().unwrap().generation, 2);
        // Repair 3: it wins again.
        store.publish(3, &manifest(3).encode()).unwrap();
        assert_eq!(latest_valid(&store).unwrap().unwrap().generation, 3);
    }

    #[test]
    fn empty_store_has_no_manifest() {
        assert!(latest_valid(&MemManifests::new()).unwrap().is_none());
    }

    #[test]
    fn prune_keeps_the_named_generation() {
        let store = MemManifests::new();
        for g in 1..=4 {
            store.publish(g, &manifest(g).encode()).unwrap();
        }
        assert_eq!(prune_older(&store, 3).unwrap(), 2);
        assert_eq!(store.generations().unwrap(), vec![3, 4]);
    }

    #[test]
    fn file_manifests_publish_and_fall_back() {
        let dir = std::env::temp_dir().join(format!("pagestore-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileManifests::open(&dir).unwrap();
        store.publish(1, &manifest(1).encode()).unwrap();
        store.publish(2, &manifest(2).encode()).unwrap();
        assert_eq!(store.generations().unwrap(), vec![1, 2]);
        assert_eq!(latest_valid(&store).unwrap().unwrap().generation, 2);
        store.publish(3, &manifest(3).encode()[..10]).unwrap();
        assert_eq!(latest_valid(&store).unwrap().unwrap().generation, 2);
        prune_older(&store, 2).unwrap();
        assert_eq!(store.generations().unwrap(), vec![2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
