//! A compact, non-self-describing binary codec for `serde` types.
//!
//! Index images (HOPI label sets, PPO number tables, APEX summaries) are
//! persisted into the blob store through this codec. The format is
//! bincode-like: fixed little-endian primitives, `u64` lengths for
//! sequences/strings/maps, one tag byte for `Option`, and a `u32` variant
//! index for enums. It is intentionally not self-describing — readers must
//! know the type, exactly like a database row codec.

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

/// Encoding/decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

/// Serialises `value` into bytes.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    value.serialize(&mut BinSerializer { out: &mut out })?;
    Ok(out)
}

/// Deserialises a value previously produced by [`to_bytes`].
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut de = BinDeserializer { input: bytes };
    let v = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(CodecError(format!(
            "{} trailing bytes after value",
            de.input.len()
        )));
    }
    Ok(v)
}

struct BinSerializer<'o> {
    out: &'o mut Vec<u8>,
}

macro_rules! ser_num {
    ($fn:ident, $ty:ty) => {
        fn $fn(self, v: $ty) -> Result<(), CodecError> {
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl<'a, 'o> ser::Serializer for &'a mut BinSerializer<'o> {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }

    ser_num!(serialize_i8, i8);
    ser_num!(serialize_i16, i16);
    ser_num!(serialize_i32, i32);
    ser_num!(serialize_i64, i64);
    ser_num!(serialize_u8, u8);
    ser_num!(serialize_u16, u16);
    ser_num!(serialize_u32, u32);
    ser_num!(serialize_u64, u64);
    ser_num!(serialize_f32, f32);
    ser_num!(serialize_f64, f64);

    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.serialize_bytes(v.as_bytes())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.out.extend_from_slice(&(v.len() as u64).to_le_bytes());
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError("sequences need a known length".into()))?;
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.out.extend_from_slice(&variant_index.to_le_bytes());
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError("maps need a known length".into()))?;
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.out.extend_from_slice(&variant_index.to_le_bytes());
        Ok(self)
    }
}

macro_rules! ser_compound {
    ($trait:path, $method:ident) => {
        impl<'a, 'o> $trait for &'a mut BinSerializer<'o> {
            type Ok = ();
            type Error = CodecError;

            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }

            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

ser_compound!(ser::SerializeSeq, serialize_element);
ser_compound!(ser::SerializeTuple, serialize_element);
ser_compound!(ser::SerializeTupleStruct, serialize_field);
ser_compound!(ser::SerializeTupleVariant, serialize_field);

impl<'a, 'o> ser::SerializeMap for &'a mut BinSerializer<'o> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl<'a, 'o> ser::SerializeStruct for &'a mut BinSerializer<'o> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl<'a, 'o> ser::SerializeStructVariant for &'a mut BinSerializer<'o> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

struct BinDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> BinDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError(format!(
                "unexpected end of input: need {n}, have {}",
                self.input.len()
            )));
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn read_len(&mut self) -> Result<usize, CodecError> {
        let b = self.take(8)?;
        let len = u64::from_le_bytes(b.try_into().expect("8 bytes"));
        usize::try_from(len).map_err(|_| CodecError("length overflows usize".into()))
    }
}

macro_rules! de_num {
    ($fn:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $fn<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let b = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(b.try_into().expect("sized")))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut BinDeserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError("format is not self-describing".into()))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(CodecError(format!("invalid bool byte {b}"))),
        }
    }

    de_num!(deserialize_i8, visit_i8, i8, 1);
    de_num!(deserialize_i16, visit_i16, i16, 2);
    de_num!(deserialize_i32, visit_i32, i32, 4);
    de_num!(deserialize_i64, visit_i64, i64, 8);
    de_num!(deserialize_u8, visit_u8, u8, 1);
    de_num!(deserialize_u16, visit_u16, u16, 2);
    de_num!(deserialize_u32, visit_u32, u32, 4);
    de_num!(deserialize_u64, visit_u64, u64, 8);
    de_num!(deserialize_f32, visit_f32, f32, 4);
    de_num!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(4)?;
        let code = u32::from_le_bytes(b.try_into().expect("4 bytes"));
        visitor.visit_char(
            char::from_u32(code)
                .ok_or_else(|| CodecError(format!("invalid char code point {code:#x}")))?,
        )
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        let bytes = self.take(len)?;
        visitor
            .visit_borrowed_str(std::str::from_utf8(bytes).map_err(|e| CodecError(e.to_string()))?)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(CodecError(format!("invalid option tag {b}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        visitor.visit_seq(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        visitor.visit_map(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError("identifiers are not encoded".into()))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError(
            "cannot skip values in a non-self-describing format".into(),
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    left: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

impl<'a, 'de> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), CodecError> {
        let b = self.de.take(4)?;
        let idx = u32::from_le_bytes(b.try_into().expect("4 bytes"));
        let value = seed.deserialize(idx.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'a, 'de> de::VariantAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::HashMap;

    fn round_trip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).expect("encode");
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn primitives() {
        round_trip(true);
        round_trip(42u8);
        round_trip(-7i64);
        round_trip(3.5f64);
        round_trip('ß');
        round_trip("hello codec".to_string());
        round_trip(Some(99u32));
        round_trip(Option::<u32>::None);
        round_trip(());
    }

    #[test]
    fn containers() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<String>::new());
        round_trip((1u8, "two".to_string(), 3.0f32));
        let mut m = HashMap::new();
        m.insert("a".to_string(), vec![1u64, 2]);
        m.insert("b".to_string(), vec![]);
        round_trip(m);
        round_trip(vec![vec![(1u32, 2u32)], vec![], vec![(3, 4), (5, 6)]]);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Record {
        id: u32,
        name: String,
        tags: Vec<u16>,
        parent: Option<Box<Record>>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        Newtype(u32),
        Tuple(u8, u8),
        Struct { w: f32, h: f32 },
    }

    #[test]
    fn structs_and_enums() {
        round_trip(Record {
            id: 7,
            name: "root".into(),
            tags: vec![1, 2, 3],
            parent: Some(Box::new(Record {
                id: 1,
                name: "p".into(),
                tags: vec![],
                parent: None,
            })),
        });
        round_trip(Shape::Unit);
        round_trip(Shape::Newtype(5));
        round_trip(Shape::Tuple(1, 2));
        round_trip(Shape::Struct { w: 1.0, h: 2.0 });
        round_trip(vec![Shape::Unit, Shape::Newtype(9)]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&5u32).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&"long string here".to_string()).unwrap();
        assert!(from_bytes::<String>(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn wrong_bool_byte_rejected() {
        assert!(from_bytes::<bool>(&[7]).is_err());
    }

    #[test]
    fn real_index_types_round_trip() {
        // the codec must handle the graph types the indexes persist
        let g = graphcore_digraph();
        let bytes = to_bytes(&g).unwrap();
        let back: TestDigraph = from_bytes(&bytes).unwrap();
        assert_eq!(g, back);
    }

    // Minimal stand-in mirroring graphcore::Digraph's serde shape to keep
    // this crate decoupled from graphcore.
    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct TestDigraph {
        fwd_off: Vec<u32>,
        fwd: Vec<u32>,
        rev_off: Vec<u32>,
        rev: Vec<u32>,
    }

    fn graphcore_digraph() -> TestDigraph {
        TestDigraph {
            fwd_off: vec![0, 2, 3, 3],
            fwd: vec![1, 2, 2],
            rev_off: vec![0, 0, 1, 3],
            rev: vec![0, 0, 1],
        }
    }
}
