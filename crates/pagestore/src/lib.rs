//! Page-based storage engine backing the FliX indexes.
//!
//! The paper's prototype stored every index in Oracle tables; this crate is
//! the equivalent substrate: slotted pages ([`page`]), a disk abstraction
//! with I/O accounting ([`disk`]), a latching buffer pool with LRU eviction
//! ([`buffer`]), heap tables of variable-length records ([`table`]), and a
//! named blob store for serialised index images ([`blob`]).
//!
//! Everything is synchronous and latch-based (`parking_lot`). Durability
//! is layered on top rather than woven through: a write-ahead log with
//! CRC-framed records and commit markers ([`wal`]), generation-numbered
//! checkpoint manifests with atomic install ([`snapshot`]), and a
//! recovery path that replays committed batches over the newest valid
//! manifest and discards torn tails ([`recovery`]). Index images are
//! bulk-built and then swapped, so the WAL carries whole page
//! after-images — redo-only, no undo — which keeps recovery a single
//! forward scan.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

/// Named blob store for serialised index images.
pub mod blob;
/// Latching buffer pool with LRU eviction and hit accounting.
pub mod buffer;
/// The self-describing binary serialisation format (serde-backed).
pub mod codec;
/// Disk abstraction with I/O accounting (memory- and file-backed).
pub mod disk;
/// Slotted 8 KiB pages with tombstoning and compaction.
pub mod page;
/// Crash recovery and the durable store lifecycle (commit / checkpoint).
pub mod recovery;
/// Checkpoint manifests with generations and atomic install.
pub mod snapshot;
/// Heap tables of variable-length records.
pub mod table;
/// Write-ahead log: CRC-framed records with commit markers.
pub mod wal;

pub use blob::{BlobError, BlobStore};
pub use buffer::{BufferPool, PoolStats};
pub use codec::{from_bytes, to_bytes, CodecError};
pub use disk::{DiskManager, DiskStats, FileDisk, MemDisk};
pub use page::{Page, PageId, SlotId, PAGE_SIZE};
pub use recovery::{CommitReceipt, DurableStore, RecoveryReport};
pub use snapshot::{FileManifests, ManifestStore, MemManifests, SnapshotManifest};
pub use table::{HeapTable, RecordId};
pub use wal::{
    parse_log, FileLog, LogDevice, LogTail, MemLog, ParsedLog, Wal, WalBatch, WalRecord,
};
