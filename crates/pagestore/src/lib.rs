//! Page-based storage engine backing the FliX indexes.
//!
//! The paper's prototype stored every index in Oracle tables; this crate is
//! the equivalent substrate: slotted pages ([`page`]), a disk abstraction
//! with I/O accounting ([`disk`]), a latching buffer pool with LRU eviction
//! ([`buffer`]), heap tables of variable-length records ([`table`]), and a
//! named blob store for serialised index images ([`blob`]).
//!
//! Everything is synchronous and latch-based (`parking_lot`); there is no
//! WAL or recovery because the paper's indexes are rebuilt, not mutated.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

/// Named blob store for serialised index images.
pub mod blob;
/// Latching buffer pool with LRU eviction and hit accounting.
pub mod buffer;
/// The self-describing binary serialisation format (serde-backed).
pub mod codec;
/// Disk abstraction with I/O accounting (memory- and file-backed).
pub mod disk;
/// Slotted 8 KiB pages with tombstoning and compaction.
pub mod page;
/// Heap tables of variable-length records.
pub mod table;

pub use blob::{BlobError, BlobStore};
pub use buffer::{BufferPool, PoolStats};
pub use codec::{from_bytes, to_bytes, CodecError};
pub use disk::{DiskManager, DiskStats, FileDisk, MemDisk};
pub use page::{Page, PageId, SlotId, PAGE_SIZE};
pub use table::{HeapTable, RecordId};
