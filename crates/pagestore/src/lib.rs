//! Page-based storage engine backing the FliX indexes.
//!
//! The paper's prototype stored every index in Oracle tables; this crate is
//! the equivalent substrate: slotted pages ([`page`]), a disk abstraction
//! with I/O accounting ([`disk`]), a latching buffer pool with LRU eviction
//! ([`buffer`]), heap tables of variable-length records ([`table`]), and a
//! named blob store for serialised index images ([`blob`]).
//!
//! Everything is synchronous and latch-based (`parking_lot`); there is no
//! WAL or recovery because the paper's indexes are rebuilt, not mutated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blob;
pub mod buffer;
pub mod codec;
pub mod disk;
pub mod page;
pub mod table;

pub use blob::BlobStore;
pub use codec::{from_bytes, to_bytes, CodecError};
pub use buffer::BufferPool;
pub use disk::{DiskManager, DiskStats, FileDisk, MemDisk};
pub use page::{Page, PageId, SlotId, PAGE_SIZE};
pub use table::{HeapTable, RecordId};
