//! Buffer pool: a fixed number of page frames over a [`DiskManager`],
//! with LRU eviction and dirty-page write-back.
//!
//! Access is closure-based (`with_page` / `with_page_mut`) so pages cannot
//! outlive their frame; the pool latch (`parking_lot::Mutex`) is held for
//! the duration of the closure, which is fine for the short record-level
//! operations the index layers perform.
//!
//! For the durability layer the pool additionally tracks the set of page
//! ids *modified since the last [`BufferPool::take_modified`]* — a strict
//! superset of the currently-dirty frames, because a dirty frame may have
//! been evicted (written back) in between. Commit uses that set to decide
//! which page images go into the WAL; checkpoints therefore only rewrite
//! pages touched since the previous checkpoint instead of the whole store.

use crate::disk::DiskManager;
use crate::page::{Page, PageId};
use flixobs::{Counter, MetricId, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

struct Frame {
    page: Page,
    dirty: bool,
    last_used: u64,
}

struct PoolInner {
    frames: HashMap<PageId, Frame>,
    tick: u64,
    /// Page ids written through [`BufferPool::with_page_mut`] since the last
    /// [`BufferPool::take_modified`]. Survives eviction of the frame.
    modified: BTreeSet<PageId>,
    /// First write-back error since the last [`BufferPool::flush_all`].
    /// Eviction happens inside `with_page*` closures whose return type is
    /// caller-chosen, so the error is parked here and surfaced at the next
    /// flush instead of being silently dropped.
    deferred_error: Option<String>,
}

/// Point-in-time buffer-pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that had to read through to disk.
    pub misses: u64,
    /// Frames displaced by LRU pressure at capacity (dirty victims are
    /// written back first).
    pub evictions: u64,
    /// Write-backs (eviction or flush) that returned an I/O error.
    pub write_errors: u64,
}

/// A latching LRU buffer pool.
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    capacity: usize,
    inner: Mutex<PoolInner>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    write_errors: Counter,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `disk`.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        Self {
            disk,
            capacity,
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                tick: 0,
                modified: BTreeSet::new(),
                deferred_error: None,
            }),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            write_errors: Counter::new(),
        }
    }

    /// The backing disk.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    fn load<'a>(&self, inner: &'a mut PoolInner, id: PageId) -> &'a mut Frame {
        inner.tick += 1;
        let tick = inner.tick;
        if inner.frames.contains_key(&id) {
            self.hits.inc();
        } else {
            self.misses.inc();
            if inner.frames.len() >= self.capacity {
                // Evict the least recently used frame (present whenever the
                // pool is at capacity, since capacity > 0).
                let victim = inner
                    .frames
                    .iter()
                    .min_by_key(|(_, f)| f.last_used)
                    .map(|(&pid, _)| pid);
                if let Some(victim) = victim {
                    if let Some(frame) = inner.frames.remove(&victim) {
                        self.evictions.inc();
                        if frame.dirty {
                            if let Err(err) = self.disk.write_page(victim, &frame.page) {
                                self.write_errors.inc();
                                inner
                                    .deferred_error
                                    .get_or_insert(format!("write-back of page {victim}: {err}"));
                            }
                        }
                    }
                }
            }
        }
        // Hit or miss, the entry API ensures the frame in one lookup.
        let frame = inner.frames.entry(id).or_insert_with(|| Frame {
            page: self.disk.read_page(id),
            dirty: false,
            last_used: 0,
        });
        frame.last_used = tick;
        frame
    }

    /// Runs `f` with read access to page `id`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> R {
        let mut inner = self.inner.lock();
        let frame = self.load(&mut inner, id);
        f(&frame.page)
    }

    /// Runs `f` with write access to page `id`; the frame is marked dirty
    /// and the page joins the modified set (see [`Self::take_modified`]).
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> R {
        let mut inner = self.inner.lock();
        let frame = self.load(&mut inner, id);
        frame.dirty = true;
        let out = f(&mut frame.page);
        inner.modified.insert(id);
        out
    }

    /// Allocates a fresh page on the backing disk.
    pub fn allocate(&self) -> PageId {
        self.disk.allocate()
    }

    /// Drains and returns the ids of every page modified since the last
    /// call (in ascending order). This is the commit granule: the WAL
    /// records a page image for each id returned here, whether or not the
    /// frame is still resident.
    pub fn take_modified(&self) -> Vec<PageId> {
        let mut inner = self.inner.lock();
        std::mem::take(&mut inner.modified).into_iter().collect()
    }

    /// Ids of pages modified since the last [`Self::take_modified`],
    /// without draining the set.
    pub fn modified_pages(&self) -> Vec<PageId> {
        self.inner.lock().modified.iter().copied().collect()
    }

    /// Removes exactly `ids` from the modified set. The commit path uses
    /// this instead of [`Self::take_modified`] so that a failed commit
    /// leaves the set intact (nothing is forgotten) and pages modified
    /// concurrently with the commit stay tracked for the next one.
    pub fn clear_modified(&self, ids: &[PageId]) {
        let mut inner = self.inner.lock();
        for id in ids {
            inner.modified.remove(id);
        }
    }

    /// Surfaces (and consumes) any eviction write-back error deferred since
    /// the last check, without flushing. Commit paths call this before
    /// trusting read-through page images: a failed write-back means the
    /// disk copy of an evicted page is stale and the in-pool copy is gone.
    pub fn check_write_health(&self) -> std::io::Result<()> {
        match self.inner.lock().deferred_error.take() {
            Some(msg) => Err(std::io::Error::other(format!(
                "deferred eviction error: {msg}"
            ))),
            None => Ok(()),
        }
    }

    /// Writes all dirty frames back to disk and returns how many pages were
    /// written. Fails on the first write error, and also surfaces any
    /// eviction write-back error deferred since the previous flush (the
    /// frames flushed before the failure stay clean; the failing frame
    /// stays dirty so a retry re-attempts it).
    pub fn flush_all(&self) -> std::io::Result<usize> {
        let mut inner = self.inner.lock();
        if let Some(msg) = inner.deferred_error.take() {
            return Err(std::io::Error::other(format!(
                "deferred eviction error: {msg}"
            )));
        }
        let mut written = 0;
        // Deterministic order so a partial flush is reproducible in tests.
        let mut dirty: Vec<PageId> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, _)| id)
            .collect();
        dirty.sort_unstable();
        for id in dirty {
            // The id came out of `frames` under the same lock; absence is
            // unreachable, so skipping is strictly safer than panicking.
            let Some(frame) = inner.frames.get_mut(&id) else {
                continue;
            };
            if let Err(err) = self.disk.write_page(id, &frame.page) {
                self.write_errors.inc();
                return Err(err);
            }
            frame.dirty = false;
            written += 1;
        }
        Ok(written)
    }

    /// `(hits, misses)` since creation (kept for callers that predate
    /// [`Self::pool_stats`]).
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// All pool counters, including LRU evictions and write errors.
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            write_errors: self.write_errors.get(),
        }
    }

    /// Binds the pool's live counters into `registry` as
    /// `pagestore_pool_{hits,misses,evictions,write_errors}_total` under
    /// `labels`, and publishes the backing disk's I/O counters via
    /// [`crate::disk::DiskStats::publish`]. The counters keep accumulating
    /// in place, so later snapshots see later values.
    pub fn publish_metrics(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        for (name, counter) in [
            ("pagestore_pool_hits_total", &self.hits),
            ("pagestore_pool_misses_total", &self.misses),
            ("pagestore_pool_evictions_total", &self.evictions),
            ("pagestore_pool_write_errors_total", &self.write_errors),
        ] {
            registry.bind_counter(MetricId::with_labels(name, labels), counter);
        }
        self.disk.stats().publish(registry, labels);
    }
}

impl flixcheck::IntegrityCheck for BufferPool {
    fn integrity_check(&self) -> Result<flixcheck::IntegrityReport, flixcheck::IntegrityError> {
        let mut audit = flixcheck::IntegrityChecker::new("BufferPool");
        let inner = self.inner.lock();
        audit.check(
            "resident frames never exceed capacity",
            inner.frames.len() <= self.capacity,
            || {
                format!(
                    "{} frames resident, capacity {}",
                    inner.frames.len(),
                    self.capacity
                )
            },
        );
        let mut ahead = None;
        for (&id, frame) in &inner.frames {
            if frame.last_used > inner.tick {
                ahead = Some(format!(
                    "page {id} last used at tick {} but the pool clock is {}",
                    frame.last_used, inner.tick
                ));
                break;
            }
        }
        audit.check(
            "frame LRU stamps never run ahead of the pool clock",
            ahead.is_none(),
            || ahead.unwrap_or_default(),
        );
        let mut untracked = None;
        for (&id, frame) in &inner.frames {
            if frame.dirty && !inner.modified.contains(&id) {
                untracked = Some(format!("page {id} is dirty but not in the modified set"));
                break;
            }
        }
        audit.check(
            "every dirty frame is tracked in the modified set",
            untracked.is_none(),
            || untracked.unwrap_or_default(),
        );
        let mut bad_page = None;
        for (&id, frame) in &inner.frames {
            if let Err(err) = frame.page.integrity_check() {
                bad_page = Some(format!("page {id}: {err}"));
                break;
            }
        }
        audit.check(
            "every resident page passes its own audit",
            bad_page.is_none(),
            || bad_page.unwrap_or_default(),
        );
        audit.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{DiskStats, MemDisk};

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemDisk::new()), cap)
    }

    #[test]
    fn read_through_and_cache() {
        let p = pool(4);
        let id = p.allocate();
        p.with_page_mut(id, |pg| {
            pg.insert(b"cached").unwrap();
        });
        let got = p.with_page(id, |pg| pg.get(0).map(<[u8]>::to_vec));
        assert_eq!(got.as_deref(), Some(&b"cached"[..]));
        let (hits, misses) = p.hit_stats();
        assert_eq!(misses, 1); // only the first touch
        assert_eq!(hits, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(disk.clone(), 2);
        let ids: Vec<PageId> = (0..4).map(|_| p.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.with_page_mut(id, |pg| {
                pg.insert(format!("rec{i}").as_bytes()).unwrap();
            });
        }
        // Pool held only 2 frames; earlier pages must have been evicted and
        // written back, so reading them again returns the data.
        for (i, &id) in ids.iter().enumerate() {
            let got = p.with_page(id, |pg| pg.get(0).map(<[u8]>::to_vec));
            assert_eq!(got, Some(format!("rec{i}").into_bytes()));
        }
    }

    #[test]
    fn lru_keeps_hot_page() {
        let p = pool(2);
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        p.with_page_mut(a, |pg| {
            pg.insert(b"a").unwrap();
        });
        p.with_page_mut(b, |pg| {
            pg.insert(b"b").unwrap();
        });
        p.with_page(a, |_| {}); // touch a: b is now LRU
        p.with_page(c, |_| {}); // evicts b
        let before = p.hit_stats();
        p.with_page(a, |_| {}); // must be a hit
        let after = p.hit_stats();
        assert_eq!(after.0, before.0 + 1);
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(disk.clone(), 8);
        let id = p.allocate();
        p.with_page_mut(id, |pg| {
            pg.insert(b"flushed").unwrap();
        });
        assert_eq!(p.flush_all().unwrap(), 1);
        // Read directly from disk, bypassing the pool.
        assert_eq!(disk.read_page(id).get(0), Some(&b"flushed"[..]));
        // Nothing dirty remains, so a second flush writes nothing.
        assert_eq!(p.flush_all().unwrap(), 0);
    }

    #[test]
    fn modified_set_survives_eviction_and_drains() {
        let p = pool(2);
        let ids: Vec<PageId> = (0..4).map(|_| p.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.with_page_mut(id, |pg| {
                pg.insert(format!("m{i}").as_bytes()).unwrap();
            });
        }
        // Two of the four were evicted (and written back), but all four are
        // still reported as modified since the last drain.
        assert_eq!(p.modified_pages(), ids);
        assert_eq!(p.take_modified(), ids);
        assert!(p.take_modified().is_empty(), "drain resets the set");
        p.with_page(ids[0], |_| {});
        assert!(p.take_modified().is_empty(), "reads do not mark pages");
        p.with_page_mut(ids[1], |_| {});
        assert_eq!(p.take_modified(), vec![ids[1]]);
    }

    /// A disk that fails every write after the first `ok_writes`.
    struct FlakyDisk {
        inner: MemDisk,
        ok_writes: std::sync::atomic::AtomicU64,
    }

    impl DiskManager for FlakyDisk {
        fn read_page(&self, id: PageId) -> Page {
            self.inner.read_page(id)
        }
        fn write_page(&self, id: PageId, page: &Page) -> std::io::Result<()> {
            use std::sync::atomic::Ordering;
            let left = self
                .ok_writes
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                .is_ok();
            if left {
                self.inner.write_page(id, page)
            } else {
                Err(std::io::Error::other("disk full"))
            }
        }
        fn allocate(&self) -> PageId {
            self.inner.allocate()
        }
        fn page_count(&self) -> u64 {
            self.inner.page_count()
        }
        fn stats(&self) -> DiskStats {
            self.inner.stats()
        }
        fn sync(&self) -> std::io::Result<()> {
            self.inner.sync()
        }
    }

    #[test]
    fn flush_all_propagates_write_errors() {
        let disk = Arc::new(FlakyDisk {
            inner: MemDisk::new(),
            ok_writes: std::sync::atomic::AtomicU64::new(0),
        });
        let p = BufferPool::new(disk, 8);
        let id = p.allocate();
        p.with_page_mut(id, |pg| {
            pg.insert(b"doomed").unwrap();
        });
        let err = p.flush_all().unwrap_err();
        assert!(err.to_string().contains("disk full"), "{err}");
        assert_eq!(p.pool_stats().write_errors, 1);
    }

    #[test]
    fn eviction_write_errors_surface_at_next_flush() {
        let disk = Arc::new(FlakyDisk {
            inner: MemDisk::new(),
            ok_writes: std::sync::atomic::AtomicU64::new(0),
        });
        let p = BufferPool::new(disk, 1);
        let a = p.allocate();
        let b = p.allocate();
        p.with_page_mut(a, |pg| {
            pg.insert(b"a").unwrap();
        });
        // Touching b evicts dirty a; the write-back fails silently at the
        // call site but is deferred...
        p.with_page(b, |_| {});
        assert_eq!(p.pool_stats().write_errors, 1);
        // ...and surfaces at the next flush.
        let err = p.flush_all().unwrap_err();
        assert!(err.to_string().contains("deferred eviction error"), "{err}");
        // The deferred error was consumed; nothing dirty is resident, so a
        // further flush succeeds (the lost page is the caller's problem —
        // the commit layer aborts on the surfaced error).
        assert_eq!(p.flush_all().unwrap(), 0);
        assert!(p.check_write_health().is_ok());
    }

    #[test]
    fn check_write_health_consumes_deferred_errors() {
        let disk = Arc::new(FlakyDisk {
            inner: MemDisk::new(),
            ok_writes: std::sync::atomic::AtomicU64::new(0),
        });
        let p = BufferPool::new(disk, 1);
        let a = p.allocate();
        let b = p.allocate();
        p.with_page_mut(a, |pg| {
            pg.insert(b"a").unwrap();
        });
        p.with_page(b, |_| {}); // evicts dirty a, write fails
        assert!(p.check_write_health().is_err());
        assert!(p.check_write_health().is_ok(), "error is consumed");
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        pool(0);
    }

    #[test]
    fn evictions_are_counted_next_to_hits_and_misses() {
        let p = pool(2);
        let ids: Vec<PageId> = (0..4).map(|_| p.allocate()).collect();
        for &id in &ids {
            p.with_page(id, |_| {});
        }
        let s = p.pool_stats();
        assert_eq!(s.misses, 4, "every first touch misses");
        assert_eq!(s.hits, 0);
        assert_eq!(s.evictions, 2, "4 pages through 2 frames displace 2");
        p.with_page(ids[3], |_| {}); // still resident
        assert_eq!(p.pool_stats().hits, 1);
        assert_eq!(p.pool_stats().evictions, 2, "hits never evict");
    }

    #[test]
    fn publish_metrics_exports_pool_and_disk_counters() {
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(disk, 2);
        let registry = MetricsRegistry::new();
        p.publish_metrics(&registry, &[("store", "test")]);
        let ids: Vec<PageId> = (0..3).map(|_| p.allocate()).collect();
        for &id in &ids {
            p.with_page(id, |_| {});
        }
        // Bound counters share cells with the pool: no re-publish needed
        // for the counter side.
        assert_eq!(
            registry
                .counter_with("pagestore_pool_misses_total", &[("store", "test")])
                .get(),
            3
        );
        assert_eq!(
            registry
                .counter_with("pagestore_pool_evictions_total", &[("store", "test")])
                .get(),
            1
        );
        // Disk gauges are snapshots: publish again to refresh.
        p.publish_metrics(&registry, &[("store", "test")]);
        let reads = registry
            .gauge_with("pagestore_disk_read_pages", &[("store", "test")])
            .get();
        assert_eq!(reads, 3.0, "one physical read per miss");
        let bytes = registry
            .gauge_with("pagestore_disk_read_bytes", &[("store", "test")])
            .get();
        assert_eq!(bytes, 3.0 * crate::page::PAGE_SIZE as f64);
    }

    #[test]
    fn integrity_detects_corruption() {
        use flixcheck::IntegrityCheck;
        let p = pool(2);
        let a = p.allocate();
        p.with_page_mut(a, |pg| {
            pg.insert(b"live").unwrap();
        });
        p.integrity_check().unwrap();

        // An LRU stamp from the future.
        {
            let mut inner = p.inner.lock();
            inner.frames.get_mut(&a).unwrap().last_used = u64::MAX;
        }
        assert!(p.integrity_check().is_err());
        {
            let mut inner = p.inner.lock();
            let tick = inner.tick;
            inner.frames.get_mut(&a).unwrap().last_used = tick;
        }
        p.integrity_check().unwrap();

        // A dirty frame missing from the modified set.
        {
            let mut inner = p.inner.lock();
            inner.modified.remove(&a);
        }
        assert!(p.integrity_check().is_err());
        {
            let mut inner = p.inner.lock();
            inner.modified.insert(a);
        }
        p.integrity_check().unwrap();

        // More resident frames than the pool has capacity for.
        {
            let mut inner = p.inner.lock();
            for id in 100..103u32 {
                inner.frames.insert(
                    id,
                    Frame {
                        page: Page::new(),
                        dirty: false,
                        last_used: 0,
                    },
                );
            }
        }
        assert!(p.integrity_check().is_err());
    }
}
