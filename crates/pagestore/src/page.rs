//! Slotted pages: variable-length records inside fixed 8 KiB frames.
//!
//! Layout (all offsets little-endian `u16`):
//!
//! ```text
//! [slot_count][free_end][slot 0 off][slot 0 len] ... | free | records...]
//! ```
//!
//! Slots grow from the front, record payloads from the back; a slot with
//! `len == TOMBSTONE` marks a deleted record. Page bytes are plain `Vec<u8>`
//! so they move through the disk layer without copies beyond the pool frame.

/// Fixed page size (8 KiB, a common DBMS default).
pub const PAGE_SIZE: usize = 8192;

/// Page identifier within one disk file.
pub type PageId = u32;

/// Slot index inside one page.
pub type SlotId = u16;

const HEADER: usize = 4;
const SLOT_BYTES: usize = 4;
const TOMBSTONE: u16 = u16::MAX;

/// An 8 KiB slotted page.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    data: Vec<u8>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Self {
        let mut data = vec![0u8; PAGE_SIZE];
        write_u16(&mut data, 2, PAGE_SIZE as u16); // free_end
        Self { data }
    }

    /// Wraps raw page bytes read from disk. An all-zero frame (a page that
    /// was allocated but never written, e.g. read back from a sparse file)
    /// is normalised into a fresh empty page.
    ///
    /// # Panics
    /// If `data` is not exactly [`PAGE_SIZE`] bytes.
    pub fn from_bytes(mut data: Vec<u8>) -> Self {
        assert_eq!(data.len(), PAGE_SIZE, "page must be {PAGE_SIZE} bytes");
        if read_u16(&data, 0) == 0 && read_u16(&data, 2) == 0 {
            write_u16(&mut data, 2, PAGE_SIZE as u16);
        }
        Self { data }
    }

    /// The raw bytes (for the disk layer).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Number of slots ever allocated (including tombstones).
    pub fn slot_count(&self) -> u16 {
        read_u16(&self.data, 0)
    }

    fn free_end(&self) -> u16 {
        read_u16(&self.data, 2)
    }

    /// Contiguous free bytes available for one more record + slot.
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER + self.slot_count() as usize * SLOT_BYTES;
        (self.free_end() as usize).saturating_sub(slots_end)
    }

    /// True if a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        len < u16::MAX as usize && self.free_space() >= len + SLOT_BYTES
    }

    /// Inserts a record, returning its slot, or `None` if it does not fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<SlotId> {
        if !self.fits(record.len()) {
            return None;
        }
        let slot = self.slot_count();
        let new_end = self.free_end() as usize - record.len();
        self.data[new_end..new_end + record.len()].copy_from_slice(record);
        let slot_off = HEADER + slot as usize * SLOT_BYTES;
        write_u16(&mut self.data, slot_off, new_end as u16);
        // flixcheck: allow(cast-truncation): fits() already rejected records longer than the page, so len < PAGE_SIZE < 64Ki
        write_u16(&mut self.data, slot_off + 2, record.len() as u16);
        write_u16(&mut self.data, 0, slot + 1);
        write_u16(&mut self.data, 2, new_end as u16);
        Some(slot)
    }

    /// Reads a record. `None` for out-of-range or deleted slots.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let slot_off = HEADER + slot as usize * SLOT_BYTES;
        let off = read_u16(&self.data, slot_off) as usize;
        let len = read_u16(&self.data, slot_off + 2);
        if len == TOMBSTONE {
            return None;
        }
        Some(&self.data[off..off + len as usize])
    }

    /// Tombstones a record; returns true if it was live. Space is not
    /// reclaimed (rebuild-only workloads never need compaction).
    pub fn delete(&mut self, slot: SlotId) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let slot_off = HEADER + slot as usize * SLOT_BYTES;
        if read_u16(&self.data, slot_off + 2) == TOMBSTONE {
            return false;
        }
        write_u16(&mut self.data, slot_off + 2, TOMBSTONE);
        true
    }

    /// Iterates over live `(slot, record)` pairs.
    pub fn records(&self) -> impl Iterator<Item = (SlotId, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }
}

impl flixcheck::IntegrityCheck for Page {
    fn integrity_check(&self) -> Result<flixcheck::IntegrityReport, flixcheck::IntegrityError> {
        let mut audit = flixcheck::IntegrityChecker::new("Page");
        audit.check(
            "frame is exactly PAGE_SIZE bytes",
            self.data.len() == PAGE_SIZE,
            || format!("frame holds {} bytes, want {PAGE_SIZE}", self.data.len()),
        );
        if self.data.len() != PAGE_SIZE {
            return audit.finish();
        }
        let slots_end = HEADER + self.slot_count() as usize * SLOT_BYTES;
        let free_end = self.free_end() as usize;
        audit.check(
            "free_end sits between the slot directory and the frame end",
            slots_end <= free_end && free_end <= PAGE_SIZE,
            || format!("free_end={free_end}, slot directory ends at {slots_end}"),
        );
        // Collect live-record extents; they must sit inside the record area
        // (past free_end) and must not overlap one another.
        let mut extents: Vec<(usize, usize, u16)> = Vec::new();
        let mut oob = None;
        for slot in 0..self.slot_count() {
            let slot_off = HEADER + slot as usize * SLOT_BYTES;
            let off = read_u16(&self.data, slot_off) as usize;
            let len = read_u16(&self.data, slot_off + 2);
            if len == TOMBSTONE {
                continue;
            }
            let end = off + len as usize;
            if (off < free_end || end > PAGE_SIZE) && oob.is_none() {
                oob = Some(format!(
                    "slot {slot}: record [{off}, {end}) outside [{free_end}, {PAGE_SIZE})"
                ));
            }
            extents.push((off, end, slot));
        }
        audit.check(
            "live records lie inside the record area",
            oob.is_none(),
            || oob.unwrap_or_default(),
        );
        extents.sort_unstable();
        let mut overlap = None;
        for w in extents.windows(2) {
            if w[1].0 < w[0].1 {
                overlap = Some(format!(
                    "slots {} and {} overlap: [{}, {}) vs [{}, {})",
                    w[0].2, w[1].2, w[0].0, w[0].1, w[1].0, w[1].1
                ));
                break;
            }
        }
        audit.check(
            "live record extents are pairwise disjoint",
            overlap.is_none(),
            || overlap.unwrap_or_default(),
        );
        audit.finish()
    }
}

fn read_u16(data: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([data[off], data[off + 1]])
}

fn write_u16(data: &mut [u8], off: usize, v: u16) {
    data[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn empty_record_allowed() {
        let mut p = Page::new();
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s), Some(&b""[..]));
    }

    #[test]
    fn delete_tombstones() {
        let mut p = Page::new();
        let a = p.insert(b"abc").unwrap();
        assert!(p.delete(a));
        assert!(!p.delete(a));
        assert_eq!(p.get(a), None);
        assert_eq!(p.records().count(), 0);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new();
        let rec = vec![7u8; 1000];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 8 pages of ~1004 bytes each fit in 8188 usable bytes
        assert_eq!(n, 8);
        assert!(!p.fits(1000));
        assert!(p.fits(10)); // small records still fit
    }

    #[test]
    fn out_of_range_get() {
        let p = Page::new();
        assert_eq!(p.get(0), None);
        assert_eq!(p.get(999), None);
    }

    #[test]
    fn round_trip_through_bytes() {
        let mut p = Page::new();
        p.insert(b"persisted").unwrap();
        let q = Page::from_bytes(p.bytes().to_vec());
        assert_eq!(q.get(0), Some(&b"persisted"[..]));
        assert_eq!(p, q);
    }

    #[test]
    fn records_skips_tombstones() {
        let mut p = Page::new();
        p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        p.insert(b"c").unwrap();
        p.delete(b);
        let live: Vec<_> = p.records().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(live, vec![b"a".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new();
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_none());
    }

    #[test]
    fn integrity_detects_corruption() {
        use flixcheck::IntegrityCheck;
        let mut p = Page::new();
        p.insert(b"first").unwrap();
        p.insert(b"second").unwrap();
        p.integrity_check().unwrap();

        // free_end pushed into the slot directory.
        let mut bad = p.clone();
        write_u16(&mut bad.data, 2, 2);
        assert!(bad.integrity_check().is_err());

        // Slot 0's record relocated on top of slot 1's.
        let mut bad = p.clone();
        let other = read_u16(&bad.data, HEADER + SLOT_BYTES);
        write_u16(&mut bad.data, HEADER, other);
        assert!(bad.integrity_check().is_err());

        // Record length running past the frame end.
        let mut bad = p.clone();
        write_u16(&mut bad.data, HEADER + 2, PAGE_SIZE as u16 - 1);
        assert!(bad.integrity_check().is_err());
    }
}
