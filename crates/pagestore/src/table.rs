//! Heap tables: append-only collections of variable-length records.
//!
//! A [`HeapTable`] owns a chain of pages in a buffer pool. Records larger
//! than a page are rejected (the index layers chunk their payloads through
//! [`crate::blob::BlobStore`] instead). Record ids are `(page, slot)` pairs
//! and remain stable for the table's lifetime.

use crate::buffer::BufferPool;
use crate::page::{PageId, SlotId};
use std::sync::Arc;

/// Stable address of a record in a heap table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Owning page.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

/// An append-only heap table over a buffer pool.
pub struct HeapTable {
    pool: Arc<BufferPool>,
    pages: Vec<PageId>,
}

impl HeapTable {
    /// Creates an empty table in `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Self {
        Self {
            pool,
            pages: Vec::new(),
        }
    }

    /// Reopens a table from its page list (as persisted by the caller).
    pub fn open(pool: Arc<BufferPool>, pages: Vec<PageId>) -> Self {
        Self { pool, pages }
    }

    /// The table's page chain (persist this to reopen the table later).
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Appends a record.
    ///
    /// # Errors
    /// If the record cannot fit in an empty page.
    pub fn insert(&mut self, record: &[u8]) -> Result<RecordId, String> {
        if let Some(&last) = self.pages.last() {
            let slot = self.pool.with_page_mut(last, |pg| pg.insert(record));
            if let Some(slot) = slot {
                return Ok(RecordId { page: last, slot });
            }
        }
        let fresh = self.pool.allocate();
        let slot = self
            .pool
            .with_page_mut(fresh, |pg| pg.insert(record))
            .ok_or_else(|| format!("record of {} bytes exceeds page capacity", record.len()))?;
        self.pages.push(fresh);
        Ok(RecordId { page: fresh, slot })
    }

    /// Reads a record by id.
    pub fn get(&self, rid: RecordId) -> Option<Vec<u8>> {
        if !self.pages.contains(&rid.page) {
            return None;
        }
        self.pool
            .with_page(rid.page, |pg| pg.get(rid.slot).map(<[u8]>::to_vec))
    }

    /// Deletes a record; returns true if it was live.
    pub fn delete(&mut self, rid: RecordId) -> bool {
        if !self.pages.contains(&rid.page) {
            return false;
        }
        self.pool.with_page_mut(rid.page, |pg| pg.delete(rid.slot))
    }

    /// Full scan in insertion order, materialising each record.
    pub fn scan(&self) -> Vec<(RecordId, Vec<u8>)> {
        let mut out = Vec::new();
        for &page in &self.pages {
            self.pool.with_page(page, |pg| {
                for (slot, rec) in pg.records() {
                    out.push((RecordId { page, slot }, rec.to_vec()));
                }
            });
        }
        out
    }

    /// Number of live records (scans the table).
    pub fn len(&self) -> usize {
        let mut n = 0;
        for &page in &self.pages {
            n += self.pool.with_page(page, |pg| pg.records().count());
        }
        n
    }

    /// True if the table holds no live records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl flixcheck::IntegrityCheck for HeapTable {
    fn integrity_check(&self) -> Result<flixcheck::IntegrityReport, flixcheck::IntegrityError> {
        let mut audit = flixcheck::IntegrityChecker::new("HeapTable");
        let mut seen = std::collections::HashSet::new();
        let dup = self.pages.iter().copied().find(|&pg| !seen.insert(pg));
        audit.check(
            "page chain lists every page exactly once",
            dup.is_none(),
            || {
                dup.map(|pg| format!("page {pg} appears more than once in the chain"))
                    .unwrap_or_default()
            },
        );
        let mut bad = None;
        for &page in &self.pages {
            if let Err(err) = self.pool.with_page(page, |pg| pg.integrity_check()) {
                bad = Some(format!("page {page}: {err}"));
                break;
            }
        }
        audit.check(
            "every chained page passes its own audit",
            bad.is_none(),
            || bad.unwrap_or_default(),
        );
        audit.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn table() -> HeapTable {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 8));
        HeapTable::create(pool)
    }

    #[test]
    fn insert_get_delete() {
        let mut t = table();
        let a = t.insert(b"alpha").unwrap();
        let b = t.insert(b"beta").unwrap();
        assert_eq!(t.get(a).as_deref(), Some(&b"alpha"[..]));
        assert_eq!(t.get(b).as_deref(), Some(&b"beta"[..]));
        assert!(t.delete(a));
        assert_eq!(t.get(a), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn spills_to_new_pages() {
        let mut t = table();
        let rec = vec![1u8; 3000];
        let ids: Vec<RecordId> = (0..10).map(|_| t.insert(&rec).unwrap()).collect();
        assert!(t.pages().len() >= 4, "3 KiB records, 2 per 8 KiB page");
        for id in ids {
            assert_eq!(t.get(id).unwrap().len(), 3000);
        }
    }

    #[test]
    fn scan_in_insertion_order() {
        let mut t = table();
        for i in 0..100u32 {
            t.insert(&i.to_le_bytes()).unwrap();
        }
        let scanned = t.scan();
        assert_eq!(scanned.len(), 100);
        for (i, (_, rec)) in scanned.iter().enumerate() {
            assert_eq!(u32::from_le_bytes(rec[..4].try_into().unwrap()), i as u32);
        }
    }

    #[test]
    fn oversized_record_errors() {
        let mut t = table();
        assert!(t.insert(&vec![0u8; crate::page::PAGE_SIZE]).is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn reopen_preserves_records() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 8));
        let mut t = HeapTable::create(pool.clone());
        let rid = t.insert(b"survivor").unwrap();
        let pages = t.pages().to_vec();
        drop(t);
        let t2 = HeapTable::open(pool, pages);
        assert_eq!(t2.get(rid).as_deref(), Some(&b"survivor"[..]));
    }

    #[test]
    fn foreign_record_id_rejected() {
        let t = table();
        assert_eq!(t.get(RecordId { page: 42, slot: 0 }), None);
    }

    #[test]
    fn integrity_detects_corruption() {
        use flixcheck::IntegrityCheck;
        let mut t = table();
        t.insert(b"rec").unwrap();
        t.integrity_check().unwrap();

        // The same page listed twice would double-count every record.
        let first = t.pages[0];
        t.pages.push(first);
        let err = t.integrity_check().unwrap_err();
        assert!(err.to_string().contains("exactly once"), "{err}");
        t.pages.pop();
        t.integrity_check().unwrap();
    }
}
