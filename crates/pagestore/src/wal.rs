//! Write-ahead log: append-only, CRC-framed, commit-marked.
//!
//! The log is a flat byte stream of framed records:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! ```
//!
//! where the CRC covers the payload. Payloads carry a one-byte tag:
//! page images (`1`), blob-directory snapshots (`2`), and commit markers
//! (`3`, carrying the checkpoint *epoch* and a batch sequence number).
//! Records between two commit markers form a **batch**; a batch becomes
//! visible to recovery only once its commit marker is fully on disk
//! ([`LogDevice::sync`] is issued right after the marker is appended).
//!
//! A crash can leave the log with a *torn tail*: a partial frame, a frame
//! whose CRC does not match, or complete records that were never followed
//! by a commit marker. All three are safely discarded by
//! [`parse_log`] — the data they describe was, by definition, never
//! acknowledged as committed, and everything before the tail is protected
//! by its own commit marker and sync.

use crate::page::PageId;
use flixobs::Counter;
use parking_lot::Mutex;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::Arc;
use std::sync::OnceLock;

/// Frame header size: length + CRC, both little-endian u32.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single record payload (sanity check while parsing, so
/// a corrupt length field cannot trigger a giant allocation).
pub const MAX_RECORD: usize = 64 << 20;

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    0xEDB8_8320 ^ (crc >> 1)
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3 polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// An append-only byte log with a durability barrier.
///
/// The WAL and the data disk are *separate* devices on purpose: the commit
/// protocol syncs the log on every commit but the data disk only at
/// checkpoints, and tests assert that ordering through the two sync
/// counters.
pub trait LogDevice: Send + Sync {
    /// Appends `bytes` at the end of the log.
    fn append(&self, bytes: &[u8]) -> io::Result<()>;
    /// Current log length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// Whether the log is empty.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
    /// Reads the entire log.
    fn read_all(&self) -> io::Result<Vec<u8>>;
    /// Truncates the log to zero length (after a durable checkpoint).
    fn truncate(&self) -> io::Result<()>;
    /// Durability barrier: appended bytes are on stable storage on `Ok`.
    fn sync(&self) -> io::Result<()>;
    /// Number of [`Self::sync`] calls since creation (for ordering tests).
    fn syncs(&self) -> u64;
}

/// In-memory log device. Memory is its stable storage, so `sync` only
/// counts; [`MemLog::truncate_to`] exists for kill-point simulations.
#[derive(Default)]
pub struct MemLog {
    bytes: Mutex<Vec<u8>>,
    syncs: Counter,
}

impl MemLog {
    /// Creates an empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A log pre-seeded with `bytes` (e.g. a truncated copy of another
    /// log, simulating a crash at that byte boundary).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self {
            bytes: Mutex::new(bytes),
            syncs: Counter::new(),
        }
    }

    /// A copy of the current log contents.
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.lock().clone()
    }

    /// Cuts the log to its first `len` bytes (no-op if already shorter).
    /// This is the kill switch for crash simulations.
    pub fn truncate_to(&self, len: usize) {
        let mut bytes = self.bytes.lock();
        if bytes.len() > len {
            bytes.truncate(len);
        }
    }
}

impl LogDevice for MemLog {
    fn append(&self, bytes: &[u8]) -> io::Result<()> {
        self.bytes.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.bytes.lock().len() as u64)
    }

    fn read_all(&self) -> io::Result<Vec<u8>> {
        Ok(self.bytes.lock().clone())
    }

    fn truncate(&self) -> io::Result<()> {
        self.bytes.lock().clear();
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        self.syncs.inc();
        Ok(())
    }

    fn syncs(&self) -> u64 {
        self.syncs.get()
    }
}

/// File-backed log device: one flat file, appended in place.
pub struct FileLog {
    file: Mutex<std::fs::File>,
    syncs: Counter,
}

impl FileLog {
    /// Opens (creating if needed) the log file at `path`. An existing log
    /// is kept — recovery decides what of it is usable.
    pub fn open(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Self {
            file: Mutex::new(file),
            syncs: Counter::new(),
        })
    }
}

impl LogDevice for FileLog {
    fn append(&self, bytes: &[u8]) -> io::Result<()> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::End(0))?;
        file.write_all(bytes)
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.lock().metadata()?.len())
    }

    fn read_all(&self) -> io::Result<Vec<u8>> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(0))?;
        let mut out = Vec::new();
        file.read_to_end(&mut out)?;
        Ok(out)
    }

    fn truncate(&self) -> io::Result<()> {
        let file = self.file.lock();
        file.set_len(0)?;
        file.sync_all()
    }

    fn sync(&self) -> io::Result<()> {
        self.syncs.inc();
        self.file.lock().sync_data()
    }

    fn syncs(&self) -> u64 {
        self.syncs.get()
    }
}

/// One logical WAL record (the payload inside a frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A full after-image of page `id`.
    PageImage {
        /// The page this image belongs to.
        id: PageId,
        /// Raw page bytes (page-size length).
        bytes: Vec<u8>,
    },
    /// A blob-directory snapshot ([`crate::BlobStore::export_directory`]).
    Directory(Vec<u8>),
    /// Commit marker sealing every record since the previous marker.
    Commit {
        /// Checkpoint generation this batch belongs to. Recovery skips
        /// batches whose epoch predates the manifest it starts from.
        epoch: u64,
        /// Batch sequence number within the epoch.
        seq: u64,
    },
}

const TAG_PAGE: u8 = 1;
const TAG_DIRECTORY: u8 = 2;
const TAG_COMMIT: u8 = 3;

impl WalRecord {
    /// Serialises the payload (tag + body, no frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        match self {
            WalRecord::PageImage { id, bytes } => {
                let mut out = Vec::with_capacity(5 + bytes.len());
                out.push(TAG_PAGE);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(bytes);
                out
            }
            WalRecord::Directory(dir) => {
                let mut out = Vec::with_capacity(1 + dir.len());
                out.push(TAG_DIRECTORY);
                out.extend_from_slice(dir);
                out
            }
            WalRecord::Commit { epoch, seq } => {
                let mut out = Vec::with_capacity(17);
                out.push(TAG_COMMIT);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out
            }
        }
    }

    /// Decodes a payload produced by [`Self::encode_payload`].
    pub fn decode_payload(payload: &[u8]) -> Result<Self, String> {
        match payload.first() {
            Some(&TAG_PAGE) => {
                if payload.len() < 5 {
                    return Err("page-image record too short".into());
                }
                let id = u32::from_le_bytes([payload[1], payload[2], payload[3], payload[4]]);
                Ok(WalRecord::PageImage {
                    id,
                    bytes: payload[5..].to_vec(),
                })
            }
            Some(&TAG_DIRECTORY) => Ok(WalRecord::Directory(payload[1..].to_vec())),
            Some(&TAG_COMMIT) => {
                if payload.len() != 17 {
                    return Err("commit record has wrong length".into());
                }
                let mut epoch = [0u8; 8];
                let mut seq = [0u8; 8];
                epoch.copy_from_slice(&payload[1..9]);
                seq.copy_from_slice(&payload[9..17]);
                Ok(WalRecord::Commit {
                    epoch: u64::from_le_bytes(epoch),
                    seq: u64::from_le_bytes(seq),
                })
            }
            Some(&tag) => Err(format!("unknown record tag {tag}")),
            None => Err("empty record".into()),
        }
    }

    /// Serialises the record with its frame header (`len`, `crc`).
    pub fn encode_framed(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// A committed batch: every record appended between two commit markers,
/// plus the sealing marker's epoch/sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// Checkpoint generation the batch was committed under.
    pub epoch: u64,
    /// Batch sequence number within the epoch.
    pub seq: u64,
    /// Records sealed by the commit marker (page images, directory).
    pub records: Vec<WalRecord>,
}

/// What the end of the log looked like when parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogTail {
    /// Log ends exactly on a commit marker (or is empty).
    Clean,
    /// Complete, CRC-valid records followed the last commit marker but no
    /// marker sealed them — an in-flight batch the crash interrupted.
    Uncommitted {
        /// Records discarded.
        records: usize,
    },
    /// The log ends mid-frame or with a CRC mismatch.
    Torn {
        /// Byte offset of the first unusable frame.
        offset: u64,
        /// Human-readable reason (short frame, CRC mismatch, bad tag...).
        reason: String,
    },
}

/// A parsed log: the committed batches, in append order, plus the tail
/// verdict. Anything in the tail is *not* part of any batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedLog {
    /// Committed batches in append order.
    pub batches: Vec<WalBatch>,
    /// What the log's end looked like.
    pub tail: LogTail,
}

/// Parses raw log bytes into committed batches, discarding the torn or
/// uncommitted tail. Never fails: a corrupt log simply yields fewer
/// batches — by the commit protocol, whatever is discarded was never
/// acknowledged.
pub fn parse_log(bytes: &[u8]) -> ParsedLog {
    let mut batches = Vec::new();
    let mut pending: Vec<WalRecord> = Vec::new();
    let mut offset = 0usize;
    let mut tail = LogTail::Clean;
    while offset < bytes.len() {
        let remaining = &bytes[offset..];
        if remaining.len() < FRAME_HEADER {
            tail = LogTail::Torn {
                offset: offset as u64,
                reason: format!("partial frame header ({} bytes)", remaining.len()),
            };
            break;
        }
        let len =
            u32::from_le_bytes([remaining[0], remaining[1], remaining[2], remaining[3]]) as usize;
        let crc = u32::from_le_bytes([remaining[4], remaining[5], remaining[6], remaining[7]]);
        if len > MAX_RECORD {
            tail = LogTail::Torn {
                offset: offset as u64,
                reason: format!("frame length {len} exceeds the record cap"),
            };
            break;
        }
        if remaining.len() < FRAME_HEADER + len {
            tail = LogTail::Torn {
                offset: offset as u64,
                reason: format!(
                    "frame claims {len} payload bytes, only {} remain",
                    remaining.len() - FRAME_HEADER
                ),
            };
            break;
        }
        let payload = &remaining[FRAME_HEADER..FRAME_HEADER + len];
        if crc32(payload) != crc {
            tail = LogTail::Torn {
                offset: offset as u64,
                reason: "payload CRC mismatch".into(),
            };
            break;
        }
        match WalRecord::decode_payload(payload) {
            Ok(WalRecord::Commit { epoch, seq }) => {
                batches.push(WalBatch {
                    epoch,
                    seq,
                    records: std::mem::take(&mut pending),
                });
            }
            Ok(record) => pending.push(record),
            Err(reason) => {
                tail = LogTail::Torn {
                    offset: offset as u64,
                    reason,
                };
                break;
            }
        }
        offset += FRAME_HEADER + len;
    }
    if matches!(tail, LogTail::Clean) && !pending.is_empty() {
        tail = LogTail::Uncommitted {
            records: pending.len(),
        };
    }
    ParsedLog { batches, tail }
}

/// Writer facade over a [`LogDevice`]: frames records, syncs on commit.
pub struct Wal {
    device: Arc<dyn LogDevice>,
}

impl Wal {
    /// Wraps `device`.
    pub fn new(device: Arc<dyn LogDevice>) -> Self {
        Self { device }
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<dyn LogDevice> {
        &self.device
    }

    /// Appends one framed record *without* a durability barrier; returns
    /// the framed size in bytes.
    pub fn append(&self, record: &WalRecord) -> io::Result<usize> {
        let framed = record.encode_framed();
        self.device.append(&framed)?;
        Ok(framed.len())
    }

    /// Seals everything appended since the last marker: appends a commit
    /// marker and syncs the device. When `Ok` returns, the batch is
    /// durable.
    pub fn commit(&self, epoch: u64, seq: u64) -> io::Result<usize> {
        let n = self.append(&WalRecord::Commit { epoch, seq })?;
        self.device.sync()?;
        Ok(n)
    }

    /// Truncates the log (used only after a checkpoint manifest is
    /// durable) and syncs the truncation.
    pub fn truncate(&self) -> io::Result<()> {
        self.device.truncate()?;
        self.device.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn sample_batches() -> (Arc<MemLog>, Vec<WalBatch>) {
        let dev = Arc::new(MemLog::new());
        let wal = Wal::new(dev.clone());
        let page0 = vec![7u8; PAGE_SIZE];
        wal.append(&WalRecord::PageImage {
            id: 0,
            bytes: page0.clone(),
        })
        .unwrap();
        wal.append(&WalRecord::Directory(b"dir-1".to_vec()))
            .unwrap();
        wal.commit(0, 0).unwrap();
        wal.append(&WalRecord::PageImage {
            id: 3,
            bytes: vec![9u8; PAGE_SIZE],
        })
        .unwrap();
        wal.append(&WalRecord::Directory(b"dir-2".to_vec()))
            .unwrap();
        wal.commit(0, 1).unwrap();
        let expected = vec![
            WalBatch {
                epoch: 0,
                seq: 0,
                records: vec![
                    WalRecord::PageImage {
                        id: 0,
                        bytes: page0,
                    },
                    WalRecord::Directory(b"dir-1".to_vec()),
                ],
            },
            WalBatch {
                epoch: 0,
                seq: 1,
                records: vec![
                    WalRecord::PageImage {
                        id: 3,
                        bytes: vec![9u8; PAGE_SIZE],
                    },
                    WalRecord::Directory(b"dir-2".to_vec()),
                ],
            },
        ];
        (dev, expected)
    }

    #[test]
    fn record_payload_round_trip() {
        for record in [
            WalRecord::PageImage {
                id: 42,
                bytes: vec![1, 2, 3],
            },
            WalRecord::Directory(vec![]),
            WalRecord::Commit { epoch: 7, seq: 99 },
        ] {
            let payload = record.encode_payload();
            assert_eq!(WalRecord::decode_payload(&payload).unwrap(), record);
        }
        assert!(WalRecord::decode_payload(&[]).is_err());
        assert!(WalRecord::decode_payload(&[200]).is_err());
        assert!(WalRecord::decode_payload(&[TAG_COMMIT, 1, 2]).is_err());
    }

    #[test]
    fn parse_recovers_committed_batches() {
        let (log, expected) = sample_batches();
        let parsed = parse_log(&log.snapshot());
        assert_eq!(parsed.batches, expected);
        assert_eq!(parsed.tail, LogTail::Clean);
    }

    #[test]
    fn every_truncation_point_yields_a_committed_prefix() {
        let (log, expected) = sample_batches();
        let bytes = log.snapshot();
        // Find where the first batch's commit marker ends: parsing a prefix
        // must yield exactly the batches whose markers fit the prefix.
        for cut in 0..=bytes.len() {
            let parsed = parse_log(&bytes[..cut]);
            assert!(
                parsed.batches.len() <= expected.len(),
                "cut {cut}: too many batches"
            );
            for (got, want) in parsed.batches.iter().zip(&expected) {
                assert_eq!(got, want, "cut {cut}: batch mismatch");
            }
            if cut < bytes.len() {
                assert!(
                    parsed.batches.len() < 2 || parsed.tail == LogTail::Clean,
                    "cut {cut}: both batches plus a tail?"
                );
            }
        }
        // The full log parses both batches; a one-byte-short log only one.
        assert_eq!(parse_log(&bytes).batches.len(), 2);
        assert_eq!(parse_log(&bytes[..bytes.len() - 1]).batches.len(), 1);
    }

    #[test]
    fn corrupted_byte_tears_the_tail() {
        let (log, _) = sample_batches();
        let mut bytes = log.snapshot();
        let last = bytes.len() - 10; // inside the final commit frame
        bytes[last] ^= 0xFF;
        let parsed = parse_log(&bytes);
        assert_eq!(parsed.batches.len(), 1, "second batch is discarded");
        assert!(matches!(parsed.tail, LogTail::Torn { .. }));
    }

    #[test]
    fn uncommitted_records_are_discarded() {
        let dev = Arc::new(MemLog::new());
        let wal = Wal::new(dev.clone());
        wal.append(&WalRecord::Directory(b"d".to_vec())).unwrap();
        wal.commit(0, 0).unwrap();
        wal.append(&WalRecord::Directory(b"in-flight".to_vec()))
            .unwrap();
        let parsed = parse_log(&dev.snapshot());
        assert_eq!(parsed.batches.len(), 1);
        assert_eq!(parsed.tail, LogTail::Uncommitted { records: 1 });
    }

    #[test]
    fn commit_syncs_the_device() {
        let dev = Arc::new(MemLog::new());
        let wal = Wal::new(dev.clone());
        wal.append(&WalRecord::Directory(vec![])).unwrap();
        assert_eq!(dev.syncs(), 0, "append alone must not sync");
        wal.commit(0, 0).unwrap();
        assert_eq!(dev.syncs(), 1);
        wal.truncate().unwrap();
        assert_eq!(dev.syncs(), 2, "truncation is also synced");
        assert!(dev.is_empty().unwrap());
    }

    #[test]
    fn oversized_frame_length_is_torn_not_allocated() {
        let mut bytes = (u32::MAX).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        let parsed = parse_log(&bytes);
        assert!(matches!(parsed.tail, LogTail::Torn { .. }));
        assert!(parsed.batches.is_empty());
    }

    #[test]
    fn file_log_round_trip() {
        let dir = std::env::temp_dir().join(format!("pagestore-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::new(Arc::new(FileLog::open(&path).unwrap()));
            wal.append(&WalRecord::Directory(b"persisted".to_vec()))
                .unwrap();
            wal.commit(4, 2).unwrap();
        }
        {
            let dev = FileLog::open(&path).unwrap();
            let parsed = parse_log(&dev.read_all().unwrap());
            assert_eq!(parsed.batches.len(), 1);
            assert_eq!(parsed.batches[0].epoch, 4);
            assert_eq!(
                parsed.batches[0].records,
                vec![WalRecord::Directory(b"persisted".to_vec())]
            );
            dev.truncate().unwrap();
            assert_eq!(dev.len().unwrap(), 0);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
