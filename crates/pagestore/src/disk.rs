//! Disk abstraction with I/O accounting.
//!
//! Two implementations: [`MemDisk`] (a `Vec` of frames, used by tests and
//! the in-memory experiment mode) and [`FileDisk`] (one flat file, page id
//! times page size addressing). Both count physical reads, writes, and
//! syncs so the benchmark harness can report I/O alongside wall-clock time —
//! the paper's absolute numbers are dominated by database round trips, and
//! the I/O counters are our substitute signal for that cost.
//!
//! Writes are fallible (`io::Result`) so the durability layer above
//! ([`crate::recovery::DurableStore`]) can distinguish "durable" from
//! "probably fine". [`DiskManager::sync`] is the barrier the checkpoint
//! protocol leans on: a checkpoint manifest is only published after the
//! data file has been fsynced.

use crate::page::{Page, PageId, PAGE_SIZE};
use flixobs::{Counter, MetricsRegistry};
use parking_lot::Mutex;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// Physical I/O counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    /// Pages read from the backing store.
    pub reads: u64,
    /// Pages written to the backing store.
    pub writes: u64,
    /// Durability barriers ([`DiskManager::sync`]) issued. `MemDisk` counts
    /// them without doing anything, so tests can assert sync *ordering*
    /// (e.g. "the data disk was synced before the WAL was truncated").
    pub syncs: u64,
}

impl DiskStats {
    /// Bytes read from the backing store (pages × page size).
    pub fn read_bytes(&self) -> u64 {
        self.reads * PAGE_SIZE as u64
    }

    /// Bytes written to the backing store (pages × page size).
    pub fn write_bytes(&self) -> u64 {
        self.writes * PAGE_SIZE as u64
    }

    /// Publishes this snapshot as `pagestore_disk_*` gauges (page, byte, and
    /// sync granularity) under `labels`. Gauges, not counters: `DiskStats`
    /// is a point-in-time copy, so each publish overwrites the previous one.
    pub fn publish(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        registry
            .gauge_with("pagestore_disk_read_pages", labels)
            .set(self.reads as f64);
        registry
            .gauge_with("pagestore_disk_write_pages", labels)
            .set(self.writes as f64);
        registry
            .gauge_with("pagestore_disk_read_bytes", labels)
            .set(self.read_bytes() as f64);
        registry
            .gauge_with("pagestore_disk_write_bytes", labels)
            .set(self.write_bytes() as f64);
        registry
            .gauge_with("pagestore_disk_syncs", labels)
            .set(self.syncs as f64);
    }
}

/// A page-granular backing store.
pub trait DiskManager: Send + Sync {
    /// Reads page `id`. Reading a never-written page yields a zero page.
    fn read_page(&self, id: PageId) -> Page;
    /// Writes page `id`. The write may sit in an OS cache until
    /// [`Self::sync`]; an `Ok` here means "accepted", not "durable".
    fn write_page(&self, id: PageId, page: &Page) -> std::io::Result<()>;
    /// Allocates a fresh page id.
    fn allocate(&self) -> PageId;
    /// Number of allocated pages.
    fn page_count(&self) -> u64;
    /// I/O counters since creation.
    fn stats(&self) -> DiskStats;
    /// Durability barrier: all writes accepted before this call are on
    /// stable storage when it returns `Ok`. `FileDisk` fsyncs; `MemDisk`
    /// only counts the call (memory is its stable storage).
    fn sync(&self) -> std::io::Result<()>;
}

/// In-memory disk: frames live in a `Vec`.
#[derive(Default)]
pub struct MemDisk {
    frames: Mutex<Vec<Option<Vec<u8>>>>,
    reads: Counter,
    writes: Counter,
    syncs: Counter,
}

impl MemDisk {
    /// Creates an empty in-memory disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// A deep copy of the current frame contents, for tests that need to
    /// freeze "what was on disk" at a particular instant (kill-point
    /// simulation reconstructs the crash-time disk from such a snapshot).
    pub fn snapshot_frames(&self) -> Vec<Option<Vec<u8>>> {
        self.frames.lock().clone()
    }

    /// Builds a disk pre-seeded with `frames` (see [`Self::snapshot_frames`]).
    pub fn from_frames(frames: Vec<Option<Vec<u8>>>) -> Self {
        Self {
            frames: Mutex::new(frames),
            ..Self::default()
        }
    }
}

impl DiskManager for MemDisk {
    fn read_page(&self, id: PageId) -> Page {
        self.reads.inc();
        let frames = self.frames.lock();
        match frames.get(id as usize).and_then(|f| f.as_ref()) {
            Some(bytes) => Page::from_bytes(bytes.clone()),
            None => Page::new(),
        }
    }

    fn write_page(&self, id: PageId, page: &Page) -> std::io::Result<()> {
        self.writes.inc();
        let mut frames = self.frames.lock();
        if frames.len() <= id as usize {
            frames.resize(id as usize + 1, None);
        }
        frames[id as usize] = Some(page.bytes().to_vec());
        Ok(())
    }

    fn allocate(&self) -> PageId {
        let mut frames = self.frames.lock();
        frames.push(None);
        (frames.len() - 1) as PageId
    }

    fn page_count(&self) -> u64 {
        self.frames.lock().len() as u64
    }

    fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.get(),
            writes: self.writes.get(),
            syncs: self.syncs.get(),
        }
    }

    fn sync(&self) -> std::io::Result<()> {
        self.syncs.inc();
        Ok(())
    }
}

/// File-backed disk: page `i` lives at byte offset `i * PAGE_SIZE`.
pub struct FileDisk {
    file: Mutex<std::fs::File>,
    pages: AtomicU64,
    reads: Counter,
    writes: Counter,
    syncs: Counter,
}

impl FileDisk {
    /// Opens (creating if needed) the file at `path`.
    pub fn open(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file: Mutex::new(file),
            pages: AtomicU64::new(len / PAGE_SIZE as u64),
            reads: Counter::new(),
            writes: Counter::new(),
            syncs: Counter::new(),
        })
    }
}

impl DiskManager for FileDisk {
    fn read_page(&self, id: PageId) -> Page {
        self.reads.inc();
        let mut file = self.file.lock();
        let mut buf = vec![0u8; PAGE_SIZE];
        let off = id as u64 * PAGE_SIZE as u64;
        if file.seek(SeekFrom::Start(off)).is_ok() {
            // Short reads (past EOF) leave the zero prefix, matching the
            // "never written page reads as zeroes" contract.
            let mut filled = 0;
            while filled < PAGE_SIZE {
                match file.read(&mut buf[filled..]) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => filled += n,
                }
            }
        }
        Page::from_bytes(buf)
    }

    fn write_page(&self, id: PageId, page: &Page) -> std::io::Result<()> {
        self.writes.inc();
        let mut file = self.file.lock();
        let off = id as u64 * PAGE_SIZE as u64;
        file.seek(SeekFrom::Start(off))?;
        file.write_all(page.bytes())?;
        let needed = id as u64 + 1;
        self.pages.fetch_max(needed, Ordering::AcqRel);
        Ok(())
    }

    fn allocate(&self) -> PageId {
        (self.pages.fetch_add(1, Ordering::AcqRel)) as PageId
    }

    fn page_count(&self) -> u64 {
        self.pages.load(Ordering::Acquire)
    }

    fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.get(),
            writes: self.writes.get(),
            syncs: self.syncs.get(),
        }
    }

    fn sync(&self) -> std::io::Result<()> {
        self.syncs.inc();
        self.file.lock().sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn DiskManager) {
        let p0 = disk.allocate();
        let p1 = disk.allocate();
        assert_ne!(p0, p1);
        let mut page = Page::new();
        page.insert(b"page-one").unwrap();
        disk.write_page(p1, &page).unwrap();
        let back = disk.read_page(p1);
        assert_eq!(back.get(0), Some(&b"page-one"[..]));
        // unwritten page reads as empty
        let empty = disk.read_page(p0);
        assert_eq!(empty.slot_count(), 0);
        disk.sync().unwrap();
        let s = disk.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.syncs, 1);
        assert!(disk.page_count() >= 2);
    }

    #[test]
    fn mem_disk_round_trip() {
        exercise(&MemDisk::new());
    }

    #[test]
    fn mem_disk_frame_snapshot_round_trip() {
        let disk = MemDisk::new();
        let id = disk.allocate();
        let mut page = Page::new();
        page.insert(b"frozen").unwrap();
        disk.write_page(id, &page).unwrap();
        let copy = MemDisk::from_frames(disk.snapshot_frames());
        // Mutating the original does not leak into the copy.
        let mut page2 = Page::new();
        page2.insert(b"mutated").unwrap();
        disk.write_page(id, &page2).unwrap();
        assert_eq!(copy.read_page(id).get(0), Some(&b"frozen"[..]));
        assert_eq!(copy.page_count(), 1);
    }

    #[test]
    fn sync_counter_is_surfaced_through_publish() {
        let disk = MemDisk::new();
        disk.sync().unwrap();
        disk.sync().unwrap();
        let registry = MetricsRegistry::new();
        disk.stats().publish(&registry, &[("store", "t")]);
        assert_eq!(
            registry
                .gauge_with("pagestore_disk_syncs", &[("store", "t")])
                .get(),
            2.0
        );
    }

    #[test]
    fn file_disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("pagestore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk.db");
        let _ = std::fs::remove_file(&path);
        exercise(&FileDisk::open(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_disk_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("pagestore-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk.db");
        let _ = std::fs::remove_file(&path);
        {
            let disk = FileDisk::open(&path).unwrap();
            let id = disk.allocate();
            let mut page = Page::new();
            page.insert(b"durable").unwrap();
            disk.write_page(id, &page).unwrap();
            disk.sync().unwrap();
        }
        {
            let disk = FileDisk::open(&path).unwrap();
            assert_eq!(disk.page_count(), 1);
            assert_eq!(disk.read_page(0).get(0), Some(&b"durable"[..]));
        }
        std::fs::remove_file(&path).unwrap();
    }
}
