//! Crash recovery: replay committed WAL batches over the latest snapshot.
//!
//! [`DurableStore`] is the lifecycle owner tying the layers together:
//!
//! - **commit**: for every page modified since the last commit, append a
//!   full after-image to the WAL, then the blob directory, then a commit
//!   marker — and sync the *log* device. The data disk is not synced;
//!   its pages may still be sitting in the buffer pool or the OS cache.
//! - **checkpoint**: fold in any pending commit, flush the pool, sync the
//!   *data* disk, publish a new manifest generation (atomic install),
//!   and only then truncate the WAL.
//! - **recover** ([`DurableStore::open`]): pick the newest CRC-valid
//!   manifest, replay every committed WAL batch whose epoch is not older
//!   than it (writing page images straight to the data disk), adopt the
//!   last committed directory, and discard the torn/uncommitted tail.
//!
//! Why discarding the tail is safe: `commit` only returns (and the store
//! only acknowledges the batch) after the commit marker is synced. A tail
//! without a valid marker is therefore a batch nobody was ever promised.
//! Conversely, everything *with* a synced marker is reproducible from
//! (manifest + WAL) alone: page images are complete after-images, and
//! blob pages are never overwritten once committed (the blob store
//! allocates fresh pages on every write), so replay is idempotent and
//! byte-identical at every kill point.

use crate::blob::{BlobError, BlobStore};
use crate::buffer::BufferPool;
use crate::disk::DiskManager;
use crate::page::Page;
use crate::snapshot::{latest_valid, prune_older, ManifestStore, SnapshotManifest};
use crate::wal::{parse_log, LogDevice, LogTail, Wal, WalRecord};
use flixobs::MetricsRegistry;
use std::io;
use std::sync::Arc;

/// Outcome of a [`DurableStore::commit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReceipt {
    /// Page images written to the WAL.
    pub pages: usize,
    /// Framed bytes appended (images + directory + marker).
    pub bytes: u64,
    /// False when there was nothing to commit (no-op, nothing appended).
    pub committed: bool,
}

/// What recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation of the manifest recovery started from (`None` for a
    /// fresh or fully-torn store).
    pub manifest_generation: Option<u64>,
    /// Committed batches replayed onto the data disk.
    pub batches_replayed: usize,
    /// Committed batches skipped because their epoch predates the
    /// manifest (their effects are already inside it).
    pub batches_skipped: usize,
    /// Page images written during replay.
    pub pages_replayed: usize,
    /// Whether the log ended in a torn frame (vs. clean or merely
    /// uncommitted).
    pub torn_tail: bool,
    /// Complete-but-uncommitted records discarded from the tail.
    pub uncommitted_discarded: usize,
    /// Log length at recovery time.
    pub wal_bytes: u64,
    /// Whether recovery finished with a fresh checkpoint (it does whenever
    /// the log was non-empty or no valid manifest existed, leaving the
    /// store with a clean WAL and a durable manifest).
    pub checkpointed: bool,
}

/// A blob store with a write-ahead log, snapshots, and crash recovery.
///
/// Single-writer by construction (`&mut self` on every mutation); reads
/// are `&self`. The store is the only sanctioned writer to its pool — the
/// commit protocol relies on [`BufferPool::modified_pages`] seeing every
/// mutation.
pub struct DurableStore {
    pool: Arc<BufferPool>,
    blobs: BlobStore,
    wal: Wal,
    manifests: Arc<dyn ManifestStore>,
    generation: u64,
    next_seq: u64,
    committed_directory: Vec<u8>,
}

impl DurableStore {
    /// Opens (recovering if necessary) a durable store over `disk`, `log`,
    /// and `manifests`. On a fresh triple this initialises an empty store
    /// and publishes its first manifest; after a crash it replays the
    /// committed WAL suffix over the newest valid manifest and discards
    /// the tail. Either way the store returned has a clean, truncated WAL.
    pub fn open(
        disk: Arc<dyn DiskManager>,
        log: Arc<dyn LogDevice>,
        manifests: Arc<dyn ManifestStore>,
        pool_capacity: usize,
    ) -> io::Result<(Self, RecoveryReport)> {
        let base = latest_valid(&*manifests)?;
        let wal_bytes_raw = log.read_all()?;
        let parsed = parse_log(&wal_bytes_raw);

        let base_generation = base.as_ref().map(|m| m.generation).unwrap_or(0);
        // An empty directory exports as a zero count.
        let mut directory = base
            .as_ref()
            .map(|m| m.directory.clone())
            .unwrap_or_else(|| 0u32.to_le_bytes().to_vec());

        let mut report = RecoveryReport {
            manifest_generation: base.as_ref().map(|m| m.generation),
            batches_replayed: 0,
            batches_skipped: 0,
            pages_replayed: 0,
            torn_tail: matches!(parsed.tail, LogTail::Torn { .. }),
            uncommitted_discarded: match parsed.tail {
                LogTail::Uncommitted { records } => records,
                _ => 0,
            },
            wal_bytes: wal_bytes_raw.len() as u64,
            checkpointed: false,
        };

        for batch in &parsed.batches {
            if batch.epoch < base_generation {
                report.batches_skipped += 1;
                continue;
            }
            for record in &batch.records {
                match record {
                    WalRecord::PageImage { id, bytes } => {
                        disk.write_page(*id, &Page::from_bytes(bytes.clone()))?;
                        report.pages_replayed += 1;
                    }
                    WalRecord::Directory(dir) => directory = dir.clone(),
                    WalRecord::Commit { .. } => {} // markers seal batches, never appear inside
                }
            }
            report.batches_replayed += 1;
        }

        let pool = Arc::new(BufferPool::new(disk, pool_capacity));
        let blobs = BlobStore::import_directory(pool.clone(), &directory)
            .map_err(|e| io::Error::other(format!("recovered directory corrupt: {e}")))?;

        let mut store = Self {
            pool,
            blobs,
            wal: Wal::new(log),
            manifests,
            generation: base_generation,
            next_seq: 0,
            committed_directory: directory,
        };

        // Leave the store well-formed: a durable manifest of exactly the
        // recovered state and an empty WAL. Skipped only when that is
        // already true (valid manifest, empty log).
        if !wal_bytes_raw.is_empty() || base.is_none() {
            store.checkpoint()?;
            report.checkpointed = true;
        }
        Ok((store, report))
    }

    /// The buffer pool backing this store.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Read access to the blob store.
    pub fn blobs(&self) -> &BlobStore {
        &self.blobs
    }

    /// Write access to the blob store. Mutations made here are *not*
    /// durable until the next [`Self::commit`].
    pub fn blobs_mut(&mut self) -> &mut BlobStore {
        &mut self.blobs
    }

    /// Current checkpoint generation (0 before the first checkpoint —
    /// unreachable through [`Self::open`], which always leaves one).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The directory bytes of the last committed state.
    pub fn committed_directory(&self) -> &[u8] {
        &self.committed_directory
    }

    /// Whether uncommitted work (modified pages or directory drift) exists.
    pub fn has_uncommitted(&self) -> bool {
        !self.pool.modified_pages().is_empty()
            || self.blobs.export_directory() != self.committed_directory
    }

    /// The manifest describing the current committed state (what the next
    /// checkpoint would publish, at the current generation).
    pub fn current_manifest(&self) -> SnapshotManifest {
        SnapshotManifest {
            generation: self.generation,
            page_count: self.pool.disk().page_count(),
            directory: self.committed_directory.clone(),
        }
    }

    /// Writes (or overwrites) blob `name`. Durable at the next commit.
    pub fn put_blob(&mut self, name: &str, data: &[u8]) -> Result<(), BlobError> {
        self.blobs.put(name, data)
    }

    /// Reads blob `name` (committed or not).
    pub fn get_blob(&self, name: &str) -> Result<Option<Vec<u8>>, BlobError> {
        self.blobs.get(name)
    }

    /// Removes blob `name` from the directory. Durable at the next commit.
    pub fn remove_blob(&mut self, name: &str) -> bool {
        self.blobs.remove(name)
    }

    /// Seals every mutation since the last commit into one WAL batch and
    /// syncs the log. On `Ok(receipt)` with `receipt.committed`, the batch
    /// survives any crash. A failed commit leaves the modified-page set
    /// intact, so a retry re-commits everything.
    pub fn commit(&mut self) -> io::Result<CommitReceipt> {
        self.pool.check_write_health()?;
        let pages = self.pool.modified_pages();
        let directory = self.blobs.export_directory();
        if pages.is_empty() && directory == self.committed_directory {
            return Ok(CommitReceipt {
                pages: 0,
                bytes: 0,
                committed: false,
            });
        }
        let mut bytes = 0u64;
        for &id in &pages {
            let image = self.pool.with_page(id, |pg| pg.bytes().to_vec());
            bytes += self
                .wal
                .append(&WalRecord::PageImage { id, bytes: image })? as u64;
        }
        bytes += self.wal.append(&WalRecord::Directory(directory.clone()))? as u64;
        bytes += self.wal.commit(self.generation, self.next_seq)? as u64;
        self.next_seq += 1;
        self.pool.clear_modified(&pages);
        self.committed_directory = directory;
        Ok(CommitReceipt {
            pages: pages.len(),
            bytes,
            committed: true,
        })
    }

    /// Takes a checkpoint: commits pending work, flushes the pool, syncs
    /// the **data** disk, publishes manifest generation `g+1` (atomic
    /// install), and only then truncates the WAL and prunes manifests
    /// older than the new one. Returns the new generation.
    ///
    /// Crash-ordering argument: if the crash lands before the manifest
    /// rename, recovery uses the old manifest + the still-intact WAL; if
    /// after, the new manifest alone reproduces the same bytes, and stale
    /// WAL batches (epoch < new generation) are skipped.
    pub fn checkpoint(&mut self) -> io::Result<u64> {
        self.commit()?;
        self.pool.flush_all()?;
        self.pool.disk().sync()?;
        let next = self
            .manifests
            .generations()?
            .last()
            .copied()
            .unwrap_or(0)
            .max(self.generation)
            + 1;
        let manifest = SnapshotManifest {
            generation: next,
            page_count: self.pool.disk().page_count(),
            directory: self.committed_directory.clone(),
        };
        self.manifests.publish(next, &manifest.encode())?;
        self.wal.truncate()?;
        // Pruning is best-effort: a leftover old manifest is harmless
        // (recovery picks the newest valid one).
        // flixcheck: allow(swallowed-result): prune failure leaves extra manifests, never lost data
        let _ = prune_older(&*self.manifests, next);
        self.generation = next;
        self.next_seq = 0;
        Ok(next)
    }

    /// Publishes pool/disk metrics plus `pagestore_generation` and
    /// `pagestore_wal_bytes` gauges under `labels`, with `# HELP` text.
    pub fn publish_metrics(&self, registry: &MetricsRegistry, labels: &[(&str, &str)]) {
        self.pool.publish_metrics(registry, labels);
        registry.describe(
            "pagestore_generation",
            "Checkpoint generation of the durable store",
        );
        registry.describe(
            "pagestore_wal_bytes",
            "Current write-ahead log length in bytes",
        );
        registry
            .gauge_with("pagestore_generation", labels)
            .set(self.generation as f64);
        registry
            .gauge_with("pagestore_wal_bytes", labels)
            .set(self.wal.device().len().unwrap_or(0) as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::snapshot::MemManifests;
    use crate::wal::MemLog;

    fn fresh() -> (Arc<MemDisk>, Arc<MemLog>, Arc<MemManifests>) {
        (
            Arc::new(MemDisk::new()),
            Arc::new(MemLog::new()),
            Arc::new(MemManifests::new()),
        )
    }

    fn open(
        disk: &Arc<MemDisk>,
        log: &Arc<MemLog>,
        manifests: &Arc<MemManifests>,
    ) -> (DurableStore, RecoveryReport) {
        DurableStore::open(disk.clone(), log.clone(), manifests.clone(), 32).unwrap()
    }

    #[test]
    fn fresh_open_publishes_a_manifest() {
        let (disk, log, manifests) = fresh();
        let (store, report) = open(&disk, &log, &manifests);
        assert_eq!(store.generation(), 1);
        assert!(report.checkpointed);
        assert_eq!(report.manifest_generation, None);
        assert_eq!(manifests.generations().unwrap(), vec![1]);
        assert!(log.is_empty().unwrap());
    }

    #[test]
    fn committed_blobs_survive_reopen_without_checkpoint() {
        let (disk, log, manifests) = fresh();
        {
            let (mut store, _) = open(&disk, &log, &manifests);
            store.put_blob("a", b"alpha").unwrap();
            store.put_blob("b", &vec![5u8; 20_000]).unwrap();
            let receipt = store.commit().unwrap();
            assert!(receipt.committed);
            assert!(receipt.pages >= 4, "20 KB spans several pages");
        }
        // No checkpoint: state must come back from WAL replay alone.
        let (store, report) = open(&disk, &log, &manifests);
        assert_eq!(report.batches_replayed, 1);
        assert!(report.checkpointed);
        assert_eq!(store.get_blob("a").unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(store.get_blob("b").unwrap().unwrap(), vec![5u8; 20_000]);
    }

    #[test]
    fn uncommitted_work_is_lost_on_reopen() {
        let (disk, log, manifests) = fresh();
        {
            let (mut store, _) = open(&disk, &log, &manifests);
            store.put_blob("kept", b"yes").unwrap();
            store.commit().unwrap();
            store.put_blob("dropped", b"no").unwrap();
            assert!(store.has_uncommitted());
            // crash: no commit
        }
        let (store, _) = open(&disk, &log, &manifests);
        assert_eq!(
            store.get_blob("kept").unwrap().as_deref(),
            Some(&b"yes"[..])
        );
        assert_eq!(store.get_blob("dropped").unwrap(), None);
        assert!(!store.has_uncommitted());
    }

    #[test]
    fn commit_is_a_noop_when_nothing_changed() {
        let (disk, log, manifests) = fresh();
        let (mut store, _) = open(&disk, &log, &manifests);
        let receipt = store.commit().unwrap();
        assert!(!receipt.committed);
        assert_eq!(receipt.bytes, 0);
        assert!(log.is_empty().unwrap());
        // Removing a blob changes only the directory — still a real commit.
        store.put_blob("x", b"1").unwrap();
        store.commit().unwrap();
        store.remove_blob("x");
        let receipt = store.commit().unwrap();
        assert!(receipt.committed);
        assert_eq!(receipt.pages, 0, "remove touches no pages");
    }

    #[test]
    fn sync_ordering_wal_on_commit_disk_on_checkpoint() {
        let (disk, log, manifests) = fresh();
        let (mut store, _) = open(&disk, &log, &manifests);
        let disk_syncs_after_open = disk.stats().syncs;
        let wal_syncs_after_open = log.syncs();
        store.put_blob("a", b"payload").unwrap();
        store.commit().unwrap();
        assert_eq!(
            log.syncs(),
            wal_syncs_after_open + 1,
            "commit syncs the log"
        );
        assert_eq!(
            disk.stats().syncs,
            disk_syncs_after_open,
            "commit must not sync the data disk"
        );
        store.checkpoint().unwrap();
        assert!(
            disk.stats().syncs > disk_syncs_after_open,
            "checkpoint syncs the data disk"
        );
        assert!(log.is_empty().unwrap(), "checkpoint truncates the WAL");
    }

    #[test]
    fn checkpoint_then_commits_then_recover() {
        let (disk, log, manifests) = fresh();
        {
            let (mut store, _) = open(&disk, &log, &manifests);
            store.put_blob("base", &vec![1u8; 9_000]).unwrap();
            store.checkpoint().unwrap();
            store.put_blob("delta", b"after-checkpoint").unwrap();
            store.commit().unwrap();
        }
        let (store, report) = open(&disk, &log, &manifests);
        assert_eq!(report.batches_replayed, 1);
        assert_eq!(report.batches_skipped, 0);
        assert_eq!(store.get_blob("base").unwrap().unwrap(), vec![1u8; 9_000]);
        assert_eq!(
            store.get_blob("delta").unwrap().as_deref(),
            Some(&b"after-checkpoint"[..])
        );
    }

    #[test]
    fn stale_epoch_batches_are_skipped() {
        let (disk, log, manifests) = fresh();
        {
            let (mut store, _) = open(&disk, &log, &manifests);
            store.put_blob("a", b"one").unwrap();
            store.commit().unwrap();
            // Simulate a crash *between* manifest publication and WAL
            // truncation: checkpoint, then restore the pre-truncate log.
            let pre_truncate = log.snapshot();
            store.checkpoint().unwrap();
            log.append(&pre_truncate).unwrap();
        }
        let (store, report) = open(&disk, &log, &manifests);
        assert_eq!(report.batches_skipped, 1, "old-epoch batch skipped");
        assert_eq!(report.batches_replayed, 0);
        assert_eq!(store.get_blob("a").unwrap().as_deref(), Some(&b"one"[..]));
    }

    #[test]
    fn torn_manifest_falls_back_to_previous_plus_wal() {
        let (disk, log, manifests) = fresh();
        let committed;
        {
            let (mut store, _) = open(&disk, &log, &manifests);
            store.put_blob("a", &vec![3u8; 12_000]).unwrap();
            store.commit().unwrap();
            committed = store.committed_directory().to_vec();
            // Crash mid-checkpoint: the new manifest hit the disk torn,
            // the WAL was not yet truncated.
            let next = store.generation() + 1;
            let torn = SnapshotManifest {
                generation: next,
                page_count: disk.page_count(),
                directory: committed.clone(),
            }
            .encode();
            manifests.publish(next, &torn[..torn.len() / 2]).unwrap();
        }
        let (store, report) = open(&disk, &log, &manifests);
        assert_eq!(
            report.manifest_generation,
            Some(1),
            "fell back past the torn one"
        );
        assert_eq!(report.batches_replayed, 1);
        assert_eq!(store.committed_directory(), &committed[..]);
        assert_eq!(store.get_blob("a").unwrap().unwrap(), vec![3u8; 12_000]);
        // The post-recovery checkpoint must out-number the torn manifest,
        // so a later recovery never prefers a repaired older generation.
        assert!(store.generation() > 2);
    }

    #[test]
    fn failed_commit_keeps_modified_set() {
        let (disk, log, manifests) = fresh();
        let (mut store, _) = open(&disk, &log, &manifests);
        store.put_blob("a", b"retry-me").unwrap();
        let modified_before = store.pool().modified_pages();
        assert!(!modified_before.is_empty());
        // A commit that fails mid-append (simulated by a full log) must
        // leave the modified set intact. MemLog cannot fail, so drive the
        // invariant directly: modified_pages is only cleared after the
        // marker syncs.
        store.commit().unwrap();
        assert!(store.pool().modified_pages().is_empty());
        let (store2, _) = open(&disk, &log, &manifests);
        assert_eq!(
            store2.get_blob("a").unwrap().as_deref(),
            Some(&b"retry-me"[..])
        );
    }

    #[test]
    fn metrics_publish_generation_and_wal_bytes() {
        let (disk, log, manifests) = fresh();
        let (mut store, _) = open(&disk, &log, &manifests);
        store.put_blob("m", b"bytes").unwrap();
        store.commit().unwrap();
        let registry = MetricsRegistry::new();
        store.publish_metrics(&registry, &[("store", "t")]);
        assert_eq!(
            registry
                .gauge_with("pagestore_generation", &[("store", "t")])
                .get(),
            1.0
        );
        assert!(
            registry
                .gauge_with("pagestore_wal_bytes", &[("store", "t")])
                .get()
                > 0.0
        );
    }
}
