//! Named blob store: arbitrarily large byte strings chunked across pages.
//!
//! Index images (a serialised HOPI label set, a PPO number table, ...) are
//! written as one blob per meta document. The directory itself lives in
//! memory and is exported/imported as bytes so a catalogue page or file can
//! persist it.

use crate::buffer::BufferPool;
use crate::page::{PageId, PAGE_SIZE};
use bytes::{Buf, BufMut};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Maximum chunk payload per page (leave room for the slot machinery).
const CHUNK: usize = PAGE_SIZE - 64;

/// Failures of blob I/O against the underlying pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobError {
    /// A chunk did not fit into a freshly allocated page.
    ChunkOverflow {
        /// Blob being written.
        name: String,
        /// The page that rejected the chunk.
        page: PageId,
        /// Bytes the chunk needed.
        chunk_len: usize,
    },
    /// A page listed in the directory no longer holds its chunk record —
    /// the store is corrupt (e.g. the page was reused or zeroed).
    MissingChunk {
        /// Blob being read.
        name: String,
        /// The directory page whose record is gone.
        page: PageId,
    },
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::ChunkOverflow {
                name,
                page,
                chunk_len,
            } => write!(
                f,
                "blob {name:?}: chunk of {chunk_len} bytes does not fit page {page}"
            ),
            BlobError::MissingChunk { name, page } => write!(
                f,
                "blob {name:?}: page {page} holds no chunk record (store corrupt)"
            ),
        }
    }
}

impl Error for BlobError {}

/// A named blob store over a buffer pool.
pub struct BlobStore {
    pool: Arc<BufferPool>,
    directory: HashMap<String, BlobEntry>,
}

#[derive(Debug, Clone)]
struct BlobEntry {
    pages: Vec<PageId>,
    len: u64,
}

impl BlobStore {
    /// Creates an empty store in `pool`.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        Self {
            pool,
            directory: HashMap::new(),
        }
    }

    /// Writes (or overwrites) blob `name`.
    ///
    /// # Errors
    /// [`BlobError::ChunkOverflow`] if a chunk does not fit a fresh page
    /// (cannot happen while `CHUNK < PAGE_SIZE - ` slot overhead, but the
    /// store reports it rather than trusting the arithmetic).
    pub fn put(&mut self, name: &str, data: &[u8]) -> Result<(), BlobError> {
        let mut pages = Vec::with_capacity(data.len().div_ceil(CHUNK));
        for chunk in data.chunks(CHUNK.max(1)) {
            let id = self.pool.allocate();
            let inserted = self.pool.with_page_mut(id, |pg| pg.insert(chunk).is_some());
            if !inserted {
                return Err(BlobError::ChunkOverflow {
                    name: name.to_string(),
                    page: id,
                    chunk_len: chunk.len(),
                });
            }
            pages.push(id);
        }
        self.directory.insert(
            name.to_string(),
            BlobEntry {
                pages,
                len: data.len() as u64,
            },
        );
        Ok(())
    }

    /// Reads blob `name`; `Ok(None)` if no such blob exists.
    ///
    /// # Errors
    /// [`BlobError::MissingChunk`] if a directory page lost its record.
    pub fn get(&self, name: &str) -> Result<Option<Vec<u8>>, BlobError> {
        let Some(entry) = self.directory.get(name) else {
            return Ok(None);
        };
        let mut out = Vec::with_capacity(entry.len as usize);
        for &page in &entry.pages {
            let present = self.pool.with_page(page, |pg| match pg.get(0) {
                Some(chunk) => {
                    out.extend_from_slice(chunk);
                    true
                }
                None => false,
            });
            if !present {
                return Err(BlobError::MissingChunk {
                    name: name.to_string(),
                    page,
                });
            }
        }
        debug_assert_eq!(out.len() as u64, entry.len);
        Ok(Some(out))
    }

    /// Removes a blob from the directory (pages are not recycled).
    pub fn remove(&mut self, name: &str) -> bool {
        self.directory.remove(name).is_some()
    }

    /// Blob names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.directory.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Size of a blob in bytes, if present.
    pub fn len_of(&self, name: &str) -> Option<u64> {
        self.directory.get(name).map(|e| e.len)
    }

    /// Serialises the directory (name -> page list) for cataloguing.
    pub fn export_directory(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut entries: Vec<(&String, &BlobEntry)> = self.directory.iter().collect();
        entries.sort_by_key(|(name, _)| name.as_str());
        buf.put_u32_le(entries.len() as u32);
        for (name, entry) in entries {
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name.as_bytes());
            buf.put_u64_le(entry.len);
            buf.put_u32_le(entry.pages.len() as u32);
            for &p in &entry.pages {
                buf.put_u32_le(p);
            }
        }
        buf
    }

    /// Restores a directory previously produced by
    /// [`Self::export_directory`] over the same disk.
    pub fn import_directory(pool: Arc<BufferPool>, mut data: &[u8]) -> Result<Self, String> {
        let mut directory = HashMap::new();
        if data.len() < 4 {
            return Err("directory truncated".into());
        }
        let count = data.get_u32_le();
        for _ in 0..count {
            if data.len() < 4 {
                return Err("directory truncated".into());
            }
            let name_len = data.get_u32_le() as usize;
            if data.len() < name_len {
                return Err("directory truncated".into());
            }
            let name = String::from_utf8(data[..name_len].to_vec())
                .map_err(|_| "invalid blob name".to_string())?;
            data.advance(name_len);
            if data.len() < 12 {
                return Err("directory truncated".into());
            }
            let len = data.get_u64_le();
            let page_count = data.get_u32_le() as usize;
            if data.len() < page_count * 4 {
                return Err("directory truncated".into());
            }
            let mut pages = Vec::with_capacity(page_count);
            for _ in 0..page_count {
                pages.push(data.get_u32_le());
            }
            directory.insert(name, BlobEntry { pages, len });
        }
        Ok(Self { pool, directory })
    }
}

impl flixcheck::IntegrityCheck for BlobStore {
    fn integrity_check(&self) -> Result<flixcheck::IntegrityReport, flixcheck::IntegrityError> {
        let mut audit = flixcheck::IntegrityChecker::new("BlobStore");
        let mut names: Vec<&String> = self.directory.keys().collect();
        names.sort();
        let mut bad_count = None;
        let mut bad_bytes = None;
        for name in names {
            let entry = &self.directory[name];
            let want_pages = (entry.len as usize).div_ceil(CHUNK);
            if entry.pages.len() != want_pages && bad_count.is_none() {
                bad_count = Some(format!(
                    "blob {name:?}: {} bytes need {want_pages} pages, directory lists {}",
                    entry.len,
                    entry.pages.len()
                ));
            }
            if bad_bytes.is_none() {
                let mut total = 0u64;
                let mut missing = None;
                for &page in &entry.pages {
                    match self.pool.with_page(page, |pg| pg.get(0).map(<[u8]>::len)) {
                        Some(len) => total += len as u64,
                        None => {
                            missing = Some(page);
                            break;
                        }
                    }
                }
                if let Some(page) = missing {
                    bad_bytes = Some(format!("blob {name:?}: page {page} holds no chunk record"));
                } else if total != entry.len {
                    bad_bytes = Some(format!(
                        "blob {name:?}: chunks sum to {total} bytes, directory says {}",
                        entry.len
                    ));
                }
            }
        }
        audit.check(
            "directory page counts match blob lengths",
            bad_count.is_none(),
            || bad_count.unwrap_or_default(),
        );
        audit.check(
            "stored chunks sum to each blob's recorded length",
            bad_bytes.is_none(),
            || bad_bytes.unwrap_or_default(),
        );
        audit.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn store() -> BlobStore {
        BlobStore::new(Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 16)))
    }

    #[test]
    fn small_blob_round_trip() {
        let mut s = store();
        s.put("a", b"hello blob").unwrap();
        assert_eq!(s.get("a").unwrap().as_deref(), Some(&b"hello blob"[..]));
        assert_eq!(s.len_of("a"), Some(10));
        assert_eq!(s.get("missing").unwrap(), None);
    }

    #[test]
    fn multi_page_blob() {
        let mut s = store();
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        s.put("big", &data).unwrap();
        assert_eq!(s.get("big").unwrap().unwrap(), data);
    }

    #[test]
    fn empty_blob() {
        let mut s = store();
        s.put("empty", b"").unwrap();
        assert_eq!(s.get("empty").unwrap().as_deref(), Some(&b""[..]));
    }

    #[test]
    fn overwrite_replaces_content() {
        let mut s = store();
        s.put("k", b"v1").unwrap();
        s.put("k", b"v2-longer").unwrap();
        assert_eq!(s.get("k").unwrap().as_deref(), Some(&b"v2-longer"[..]));
    }

    #[test]
    fn names_sorted_and_remove() {
        let mut s = store();
        s.put("zeta", b"1").unwrap();
        s.put("alpha", b"2").unwrap();
        assert_eq!(s.names(), vec!["alpha", "zeta"]);
        assert!(s.remove("zeta"));
        assert!(!s.remove("zeta"));
        assert_eq!(s.names(), vec!["alpha"]);
    }

    #[test]
    fn directory_export_import() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 16));
        let mut s = BlobStore::new(pool.clone());
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 13) as u8).collect();
        s.put("idx/meta-0", &data).unwrap();
        s.put("idx/meta-1", b"tiny").unwrap();
        let dir = s.export_directory();
        let s2 = BlobStore::import_directory(pool, &dir).unwrap();
        assert_eq!(s2.get("idx/meta-0").unwrap().unwrap(), data);
        assert_eq!(s2.get("idx/meta-1").unwrap().as_deref(), Some(&b"tiny"[..]));
    }

    #[test]
    fn corrupt_directory_rejected() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4));
        assert!(BlobStore::import_directory(pool.clone(), &[1, 2]).is_err());
        // valid count but truncated entry
        let bad = 1u32.to_le_bytes().to_vec();
        assert!(BlobStore::import_directory(pool, &bad).is_err());
    }

    #[test]
    fn integrity_detects_corruption() {
        use flixcheck::IntegrityCheck;
        let mut s = store();
        s.put("a", b"payload").unwrap();
        let big: Vec<u8> = vec![9u8; 3 * CHUNK + 17];
        s.put("big", &big).unwrap();
        s.integrity_check().unwrap();

        // Directory length out of step with the stored chunks.
        s.directory.get_mut("a").unwrap().len += 1;
        assert!(s.integrity_check().is_err());
        s.directory.get_mut("a").unwrap().len -= 1;
        s.integrity_check().unwrap();

        // A phantom page appended to a blob's chain.
        let extra = s.pool.allocate();
        s.directory.get_mut("big").unwrap().pages.push(extra);
        assert!(s.integrity_check().is_err());
    }
}
