#!/usr/bin/env sh
# Full local CI gate: formatting, clippy, the flixcheck static-analysis
# pass, and the test suite. Everything runs offline (dependencies are
# vendored); any failure stops the script.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== flixcheck (static analysis: text, token, and concurrency rules)"
# SARIF artifact first: --format sarif exits non-zero on findings too, so
# this both produces flixcheck.sarif and gates the build.
cargo run -q -p flixcheck -- --format sarif > flixcheck.sarif
grep -q '"version": "2.1.0"' flixcheck.sarif
grep -q '"runs"' flixcheck.sarif
# Human-readable pass for the log (also fails on any diagnostic,
# including allowlist-stale).
cargo run -q -p flixcheck

echo "== flixcheck negative smoke (seeded AB-BA deadlock must be caught)"
if cargo run -q -p flixcheck -- --root crates/flixcheck/fixtures/deadlock; then
    echo "flixcheck failed to flag the seeded deadlock fixture" >&2
    exit 1
fi

echo "== cargo test (workspace, sequential builds: FLIX_BUILD_THREADS=1)"
FLIX_BUILD_THREADS=1 cargo test -q --workspace

echo "== cargo test (workspace, parallel builds: FLIX_BUILD_THREADS=0)"
FLIX_BUILD_THREADS=0 cargo test -q --workspace

echo "== cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run --workspace

echo "== repro query smoke test (observability layer end to end)"
cargo run -q -p bench --bin repro -- query --scale 0.02

echo "== repro serve smoke test (worker pool at 2 and 8 threads, 1 shard)"
cargo run -q -p bench --bin repro -- serve --scale 0.02 --serve-threads 2,8 --shards 1

echo "== repro serve smoke test (sharded serving at 4 shards)"
cargo run -q -p bench --bin repro -- serve --scale 0.02 --serve-threads 2 --shards 4

echo "== repro trace smoke test (flight recorder + Chrome trace export)"
cargo run -q -p bench --bin repro -- trace --scale 0.02
# Shape-check the artifacts: trace.json must be a Chrome trace-event file
# with duration spans and instants, BENCH_obs.json must carry the
# overhead and adaptive-admission numbers.
grep -q '"traceEvents"' trace.json
grep -q '"ph":"X"' trace.json
grep -q '"ph":"i"' trace.json
grep -q '"overhead_pct"' BENCH_obs.json
grep -q '"events_per_sec"' BENCH_obs.json
grep -q '"limit_changes"' BENCH_obs.json

echo "== repro recover smoke test (WAL, kill-point sweep, live hot swap)"
cargo run -q -p bench --bin repro -- recover --scale 0.02
# Shape-check: the sweep must report zero mismatches and the hot swap
# zero dropped/mismatched answers (the binary itself asserts the same).
grep -q '"kill_points"' BENCH_recovery.json
grep -q '"mismatches": 0' BENCH_recovery.json
grep -q '"dropped": 0' BENCH_recovery.json
grep -q '"mismatched": 0' BENCH_recovery.json
grep -q '"file_commits_per_sec"' BENCH_recovery.json

echo "CI green."
