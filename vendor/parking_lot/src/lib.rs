#![allow(clippy::all)]
//! A vendored, minimal `parking_lot` stand-in backed by `std::sync`.
//!
//! Only the API surface the workspace uses is provided: `Mutex` and
//! `RwLock` with non-poisoning guards. Poisoning is neutralised by
//! recovering the inner guard — matching parking_lot semantics where a
//! panicking holder simply releases the lock.

/// A non-poisoning mutual exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
