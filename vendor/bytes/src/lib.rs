#![allow(clippy::all)]
//! A vendored, minimal `bytes` stand-in: the `Buf`/`BufMut` cursor traits
//! for `&[u8]` and `Vec<u8>`, little-endian accessors only — exactly what
//! the pagestore blob directory codec uses.

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread byte slice.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes (panics if fewer remain, matching upstream).
    fn advance(&mut self, cnt: usize);

    /// Reads one `u8`.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Copies the next `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}
