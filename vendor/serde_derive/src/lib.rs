#![allow(clippy::all)]
//! Vendored minimal `#[derive(Serialize, Deserialize)]` implementation.
//!
//! The real `serde_derive` (and its `syn`/`quote` dependency stack) cannot
//! be fetched in this offline build environment, so this crate re-implements
//! the subset of the derive the workspace needs: non-generic structs with
//! named fields and non-generic enums (unit / newtype / tuple / struct
//! variants), plus the `#[serde(skip)]` field attribute. Generated code
//! targets the vendored `serde` data model, whose trait signatures mirror
//! upstream serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Derives `serde::ser::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let code = gen_serialize(&item);
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let code = gen_deserialize(&item);
    code.parse().expect("generated Deserialize impl parses")
}

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes leading attributes; returns true if `#[serde(skip)]` was seen.
    fn skip_attrs(&mut self) -> bool {
        let mut saw_skip = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                saw_skip |= attr_is_serde_skip(&g.stream());
            }
        }
        saw_skip
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in ...)` etc.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }

    /// Consumes a type up to a top-level comma (tracking `<`/`>` nesting).
    fn skip_type(&mut self) {
        let mut angle_depth: i32 = 0;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn attr_is_serde_skip(stream: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

fn parse(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the vendored derive");
        }
    }
    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive: expected a braced body for {name}, found {other:?}"),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while !c.at_end() {
        let skip = c.skip_attrs();
        c.skip_visibility();
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        c.skip_type();
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        let name = c.expect_ident("variant name");
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                c.next();
                if arity == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(arity)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())
                    .into_iter()
                    .map(|f| f.name)
                    .collect();
                c.next();
                VariantKind::Struct(names)
            }
            _ => VariantKind::Unit,
        };
        match c.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => {
                panic!("serde_derive: unexpected token after variant `{name}`: {other:?}")
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Counts comma-separated items at angle-bracket depth 0 in a field list.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth: i32 = 0;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

/// Emits the `match seq.next_element()` expression for one positional field.
fn next_element_expr(owner: &str, field_desc: &str) -> String {
    format!(
        "match ::serde::de::SeqAccess::next_element(&mut seq)? {{ \
             ::core::option::Option::Some(v) => v, \
             ::core::option::Option::None => return ::core::result::Result::Err(\
                 ::serde::de::Error::custom(\"{owner} is missing {field_desc}\")), \
         }}"
    )
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            write!(
                out,
                "#[automatically_derived] \
                 impl ::serde::ser::Serialize for {name} {{ \
                   fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S) \
                       -> ::core::result::Result<S::Ok, S::Error> {{ \
                     let mut state = ::serde::ser::Serializer::serialize_struct(\
                         serializer, \"{name}\", {len})?;",
                name = name,
                len = active.len()
            )
            .expect("write to string");
            for f in &active {
                write!(
                    out,
                    "::serde::ser::SerializeStruct::serialize_field(\
                         &mut state, \"{f}\", &self.{f})?;",
                    f = f.name
                )
                .expect("write to string");
            }
            out.push_str("::serde::ser::SerializeStruct::end(state) } }");
        }
        Item::Enum { name, variants } => {
            write!(
                out,
                "#[automatically_derived] \
                 impl ::serde::ser::Serialize for {name} {{ \
                   fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S) \
                       -> ::core::result::Result<S::Ok, S::Error> {{ \
                     match self {{"
            )
            .expect("write to string");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => write!(
                        out,
                        "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(\
                             serializer, \"{name}\", {idx}u32, \"{vname}\"),"
                    )
                    .expect("write to string"),
                    VariantKind::Newtype => write!(
                        out,
                        "{name}::{vname}(__f0) => \
                             ::serde::ser::Serializer::serialize_newtype_variant(\
                                 serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),"
                    )
                    .expect("write to string"),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        write!(
                            out,
                            "{name}::{vname}({binds}) => {{ \
                                 let mut state = \
                                     ::serde::ser::Serializer::serialize_tuple_variant(\
                                         serializer, \"{name}\", {idx}u32, \"{vname}\", {arity})?;",
                            binds = binds.join(", ")
                        )
                        .expect("write to string");
                        for b in &binds {
                            write!(
                                out,
                                "::serde::ser::SerializeTupleVariant::serialize_field(\
                                     &mut state, {b})?;"
                            )
                            .expect("write to string");
                        }
                        out.push_str("::serde::ser::SerializeTupleVariant::end(state) }");
                    }
                    VariantKind::Struct(fields) => {
                        write!(
                            out,
                            "{name}::{vname} {{ {binds} }} => {{ \
                                 let mut state = \
                                     ::serde::ser::Serializer::serialize_struct_variant(\
                                         serializer, \"{name}\", {idx}u32, \"{vname}\", {len})?;",
                            binds = fields.join(", "),
                            len = fields.len()
                        )
                        .expect("write to string");
                        for f in fields {
                            write!(
                                out,
                                "::serde::ser::SerializeStructVariant::serialize_field(\
                                     &mut state, \"{f}\", {f})?;"
                            )
                            .expect("write to string");
                        }
                        out.push_str("::serde::ser::SerializeStructVariant::end(state) }");
                    }
                }
            }
            out.push_str("} } }");
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let active: Vec<&str> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| f.name.as_str())
                .collect();
            let field_list = active
                .iter()
                .map(|f| format!("\"{f}\""))
                .collect::<Vec<_>>()
                .join(", ");
            let mut build = String::new();
            for f in fields {
                if f.skip {
                    write!(build, "{}: ::core::default::Default::default(),", f.name)
                        .expect("write to string");
                } else {
                    write!(
                        build,
                        "{}: {},",
                        f.name,
                        next_element_expr(
                            &format!("struct {name}"),
                            &format!("field `{}`", f.name)
                        )
                    )
                    .expect("write to string");
                }
            }
            write!(
                out,
                "#[automatically_derived] \
                 impl<'de> ::serde::de::Deserialize<'de> for {name} {{ \
                   fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: D) \
                       -> ::core::result::Result<Self, D::Error> {{ \
                     struct __Visitor; \
                     impl<'de> ::serde::de::Visitor<'de> for __Visitor {{ \
                       type Value = {name}; \
                       fn expecting(&self, f: &mut ::core::fmt::Formatter<'_>) \
                           -> ::core::fmt::Result {{ f.write_str(\"struct {name}\") }} \
                       fn visit_seq<A: ::serde::de::SeqAccess<'de>>(self, mut seq: A) \
                           -> ::core::result::Result<Self::Value, A::Error> {{ \
                         ::core::result::Result::Ok({name} {{ {build} }}) \
                       }} \
                     }} \
                     ::serde::de::Deserializer::deserialize_struct(\
                         deserializer, \"{name}\", &[{field_list}], __Visitor) \
                   }} \
                 }}"
            )
            .expect("write to string");
        }
        Item::Enum { name, variants } => {
            let variant_list = variants
                .iter()
                .map(|v| format!("\"{}\"", v.name))
                .collect::<Vec<_>>()
                .join(", ");
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => write!(
                        arms,
                        "{idx}u32 => {{ \
                             ::serde::de::VariantAccess::unit_variant(__variant)?; \
                             ::core::result::Result::Ok({name}::{vname}) \
                         }}"
                    )
                    .expect("write to string"),
                    VariantKind::Newtype => write!(
                        arms,
                        "{idx}u32 => ::core::result::Result::map(\
                             ::serde::de::VariantAccess::newtype_variant(__variant), \
                             {name}::{vname}),"
                    )
                    .expect("write to string"),
                    VariantKind::Tuple(arity) => {
                        let elems = (0..*arity)
                            .map(|i| {
                                next_element_expr(
                                    &format!("variant {name}::{vname}"),
                                    &format!("tuple field {i}"),
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        write!(
                            arms,
                            "{idx}u32 => {{ \
                               struct __V{idx}; \
                               impl<'de> ::serde::de::Visitor<'de> for __V{idx} {{ \
                                 type Value = {name}; \
                                 fn expecting(&self, f: &mut ::core::fmt::Formatter<'_>) \
                                     -> ::core::fmt::Result {{ \
                                   f.write_str(\"variant {name}::{vname}\") }} \
                                 fn visit_seq<A: ::serde::de::SeqAccess<'de>>(self, mut seq: A) \
                                     -> ::core::result::Result<Self::Value, A::Error> {{ \
                                   ::core::result::Result::Ok({name}::{vname}({elems})) \
                                 }} \
                               }} \
                               ::serde::de::VariantAccess::tuple_variant(\
                                   __variant, {arity}, __V{idx}) \
                             }}"
                        )
                        .expect("write to string");
                    }
                    VariantKind::Struct(fields) => {
                        let field_list = fields
                            .iter()
                            .map(|f| format!("\"{f}\""))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let build = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: {}",
                                    next_element_expr(
                                        &format!("variant {name}::{vname}"),
                                        &format!("field `{f}`")
                                    )
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        write!(
                            arms,
                            "{idx}u32 => {{ \
                               struct __V{idx}; \
                               impl<'de> ::serde::de::Visitor<'de> for __V{idx} {{ \
                                 type Value = {name}; \
                                 fn expecting(&self, f: &mut ::core::fmt::Formatter<'_>) \
                                     -> ::core::fmt::Result {{ \
                                   f.write_str(\"variant {name}::{vname}\") }} \
                                 fn visit_seq<A: ::serde::de::SeqAccess<'de>>(self, mut seq: A) \
                                     -> ::core::result::Result<Self::Value, A::Error> {{ \
                                   ::core::result::Result::Ok({name}::{vname} {{ {build} }}) \
                                 }} \
                               }} \
                               ::serde::de::VariantAccess::struct_variant(\
                                   __variant, &[{field_list}], __V{idx}) \
                             }}"
                        )
                        .expect("write to string");
                    }
                }
            }
            write!(
                out,
                "#[automatically_derived] \
                 impl<'de> ::serde::de::Deserialize<'de> for {name} {{ \
                   fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: D) \
                       -> ::core::result::Result<Self, D::Error> {{ \
                     struct __Visitor; \
                     impl<'de> ::serde::de::Visitor<'de> for __Visitor {{ \
                       type Value = {name}; \
                       fn expecting(&self, f: &mut ::core::fmt::Formatter<'_>) \
                           -> ::core::fmt::Result {{ f.write_str(\"enum {name}\") }} \
                       fn visit_enum<A: ::serde::de::EnumAccess<'de>>(self, data: A) \
                           -> ::core::result::Result<Self::Value, A::Error> {{ \
                         let (__idx, __variant) = ::serde::de::EnumAccess::variant_seed(\
                             data, ::core::marker::PhantomData::<u32>)?; \
                         match __idx {{ \
                           {arms} \
                           _ => ::core::result::Result::Err(::serde::de::Error::custom(\
                               \"invalid variant index for enum {name}\")), \
                         }} \
                       }} \
                     }} \
                     ::serde::de::Deserializer::deserialize_enum(\
                         deserializer, \"{name}\", &[{variant_list}], __Visitor) \
                   }} \
                 }}"
            )
            .expect("write to string");
        }
    }
    out
}
