#![allow(clippy::all)]
//! A vendored, minimal `crossbeam` stand-in providing `crossbeam::channel`
//! over `std::sync::mpsc`. Only the constructors and methods the workspace
//! uses are implemented (`unbounded`, `bounded`, `send`, `recv`,
//! `try_recv`).

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a channel.
    pub struct Sender<T>(SenderImpl<T>);

    enum SenderImpl<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Error returned when the receiving half has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// The receiving half has disconnected.
        Disconnected(T),
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking on a full bounded channel.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderImpl::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderImpl::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Non-blocking send; on a full bounded channel returns
        /// [`TrySendError::Full`] instead of waiting. Unbounded channels
        /// never report `Full`.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SenderImpl::Unbounded(tx) => {
                    tx.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
                SenderImpl::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                SenderImpl::Unbounded(tx) => Sender(SenderImpl::Unbounded(tx.clone())),
                SenderImpl::Bounded(tx) => Sender(SenderImpl::Bounded(tx.clone())),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Receiver::recv`] on disconnect.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over received messages.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderImpl::Unbounded(tx)), Receiver(rx))
    }

    /// Creates a channel with capacity `cap` (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderImpl::Bounded(tx)), Receiver(rx))
    }
}
