#![allow(clippy::all)]
//! A vendored, minimal re-implementation of the `rand` 0.8 API surface the
//! workspace uses: `SmallRng::seed_from_u64`, `Rng::gen`, `Rng::gen_bool`,
//! and `Rng::gen_range` over integer ranges.
//!
//! The generator is SplitMix64-seeded xoshiro256++, which matches the
//! statistical quality class of rand's `SmallRng` and is fully
//! deterministic for a given seed (the workloads rely on that for
//! reproducible corpora).

/// Uniformly samplable types for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range` (panics on empty ranges,
    /// matching upstream rand).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as upstream rand does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! sample_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $ty
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $ty
            }
        }
    )*};
}

sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}
