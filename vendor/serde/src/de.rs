//! Deserialization half of the data model: `Deserialize` / `Deserializer` /
//! `Visitor` and the access traits, plus impls for std types.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors produced while deserializing.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Drives `deserializer` to produce a value.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Stateful seed for deserializing a value (serde's `DeserializeSeed`).
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Drives `deserializer` using the seed's state.
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;

    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data-format frontend, mirroring serde's `Deserializer`.
pub trait Deserializer<'de>: Sized {
    /// Error type for this format.
    type Error: Error;

    /// Self-describing formats dispatch on the input; binary formats error.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a borrowed string.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes borrowed bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a fixed-arity tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct with named fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a field/variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skips over a value.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Whether the format is human readable (binary formats say no).
    fn is_human_readable(&self) -> bool {
        true
    }
}

fn unexpected<'de, V: Visitor<'de>, E: Error>(v: &V, got: &str) -> E {
    struct Expecting<'a, V>(&'a V);
    impl<'de, V: Visitor<'de>> Display for Expecting<'_, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
    E::custom(format_args!(
        "invalid type: got {got}, expected {}",
        Expecting(v)
    ))
}

/// Drives construction of a value from deserializer callbacks.
pub trait Visitor<'de>: Sized {
    /// The value being produced.
    type Value;

    /// Describes what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Visits a `bool`.
    fn visit_bool<E: Error>(self, _v: bool) -> Result<Self::Value, E> {
        Err(unexpected(&self, "bool"))
    }
    /// Visits an `i8` (forwards to `visit_i64`).
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visits an `i16` (forwards to `visit_i64`).
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visits an `i32` (forwards to `visit_i64`).
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visits an `i64`.
    fn visit_i64<E: Error>(self, _v: i64) -> Result<Self::Value, E> {
        Err(unexpected(&self, "i64"))
    }
    /// Visits a `u8` (forwards to `visit_u64`).
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits a `u16` (forwards to `visit_u64`).
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits a `u32` (forwards to `visit_u64`).
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits a `u64`.
    fn visit_u64<E: Error>(self, _v: u64) -> Result<Self::Value, E> {
        Err(unexpected(&self, "u64"))
    }
    /// Visits an `f32` (forwards to `visit_f64`).
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    /// Visits an `f64`.
    fn visit_f64<E: Error>(self, _v: f64) -> Result<Self::Value, E> {
        Err(unexpected(&self, "f64"))
    }
    /// Visits a `char` (forwards to `visit_str`).
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_str(v.encode_utf8(&mut [0u8; 4]))
    }
    /// Visits a transient string slice.
    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(unexpected(&self, "str"))
    }
    /// Visits a string borrowed from the input (forwards to `visit_str`).
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    /// Visits an owned string (forwards to `visit_str`).
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Visits transient bytes.
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(unexpected(&self, "bytes"))
    }
    /// Visits bytes borrowed from the input (forwards to `visit_bytes`).
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    /// Visits an owned byte buffer (forwards to `visit_bytes`).
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    /// Visits `None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "none"))
    }
    /// Visits `Some(value)`.
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, "some"))
    }
    /// Visits `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "unit"))
    }
    /// Visits a newtype struct payload.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, "newtype struct"))
    }
    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "sequence"))
    }
    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "map"))
    }
    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "enum"))
    }
}

/// Element-by-element access to a sequence.
pub trait SeqAccess<'de> {
    /// Error type of the driving deserializer.
    type Error: Error;

    /// Deserializes the next element using `seed`.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserializes the next element by type.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Remaining length if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map.
pub trait MapAccess<'de> {
    /// Error type of the driving deserializer.
    type Error: Error;

    /// Deserializes the next key using `seed`.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserializes the next value using `seed`.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes the next key by type.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserializes the next value by type.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Deserializes the next entry by type.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Remaining length if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type of the driving deserializer.
    type Error: Error;
    /// Access to the variant's payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserializes the variant tag using `seed`.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserializes the variant tag by type.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type of the driving deserializer.
    type Error: Error;

    /// Consumes a dataless variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserializes a newtype variant payload using `seed`.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Deserializes a newtype variant payload by type.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Deserializes a tuple variant payload.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes a struct variant payload.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

// ---------------------------------------------------------------------------
// IntoDeserializer + value deserializers (used by enum tag decoding).
// ---------------------------------------------------------------------------

/// Conversion of a plain value into a `Deserializer` over itself.
pub trait IntoDeserializer<'de, E: Error = value::Error> {
    /// The resulting deserializer.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Wraps `self`.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Plain-value deserializers (serde's `serde::de::value`).
pub mod value {
    use super::*;

    /// A minimal concrete error for value deserializers.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    impl super::Error for Error {
        fn custom<T: Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    macro_rules! value_deserializer {
        ($name:ident, $ty:ty, $visit:ident) => {
            /// Deserializer over one plain value.
            pub struct $name<E> {
                value: $ty,
                marker: PhantomData<E>,
            }

            impl<E> $name<E> {
                /// Wraps `value`.
                pub fn new(value: $ty) -> Self {
                    Self {
                        value,
                        marker: PhantomData,
                    }
                }
            }

            impl<'de, E: super::Error> Deserializer<'de> for $name<E> {
                type Error = E;

                fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                    visitor.$visit(self.value)
                }

                forward_to_any! {
                    deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32
                    deserialize_i64 deserialize_u8 deserialize_u16 deserialize_u32
                    deserialize_u64 deserialize_f32 deserialize_f64 deserialize_char
                    deserialize_str deserialize_string deserialize_bytes
                    deserialize_byte_buf deserialize_option deserialize_unit
                    deserialize_seq deserialize_map deserialize_identifier
                    deserialize_ignored_any
                }

                fn deserialize_unit_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }

                fn deserialize_newtype_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }

                fn deserialize_tuple<V: Visitor<'de>>(
                    self,
                    _len: usize,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }

                fn deserialize_tuple_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _len: usize,
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }

                fn deserialize_struct<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _fields: &'static [&'static str],
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }

                fn deserialize_enum<V: Visitor<'de>>(
                    self,
                    _name: &'static str,
                    _variants: &'static [&'static str],
                    visitor: V,
                ) -> Result<V::Value, E> {
                    self.deserialize_any(visitor)
                }
            }
        };
    }

    macro_rules! forward_to_any {
        ($($method:ident)*) => {$(
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                self.deserialize_any(visitor)
            }
        )*};
    }

    value_deserializer!(U8Deserializer, u8, visit_u8);
    value_deserializer!(U16Deserializer, u16, visit_u16);
    value_deserializer!(U32Deserializer, u32, visit_u32);
    value_deserializer!(U64Deserializer, u64, visit_u64);
    value_deserializer!(StringDeserializer, String, visit_string);
}

macro_rules! into_deserializer {
    ($($ty:ty => $de:ident,)*) => {$(
        impl<'de, E: Error> IntoDeserializer<'de, E> for $ty {
            type Deserializer = value::$de<E>;

            fn into_deserializer(self) -> Self::Deserializer {
                value::$de::new(self)
            }
        }
    )*};
}

into_deserializer! {
    u8 => U8Deserializer,
    u16 => U16Deserializer,
    u32 => U32Deserializer,
    u64 => U64Deserializer,
    String => StringDeserializer,
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! deserialize_prim {
    ($($ty:ty, $method:ident, $visit:ident, $expect:literal;)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimVisitor;
                impl<'de> Visitor<'de> for PrimVisitor {
                    type Value = $ty;

                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expect)
                    }

                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$method(PrimVisitor)
            }
        }
    )*};
}

deserialize_prim! {
    bool, deserialize_bool, visit_bool, "a bool";
    i8, deserialize_i8, visit_i8, "an i8";
    i16, deserialize_i16, visit_i16, "an i16";
    i32, deserialize_i32, visit_i32, "an i32";
    i64, deserialize_i64, visit_i64, "an i64";
    u8, deserialize_u8, visit_u8, "a u8";
    u16, deserialize_u16, visit_u16, "a u16";
    u32, deserialize_u32, visit_u32, "a u32";
    u64, deserialize_u64, visit_u64, "a u64";
    f32, deserialize_f32, visit_f32, "an f32";
    f64, deserialize_f64, visit_f64, "an f64";
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UsizeVisitor;
        impl<'de> Visitor<'de> for UsizeVisitor {
            type Value = usize;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a usize")
            }

            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("u64 overflows usize"))
            }
        }
        deserializer.deserialize_u64(UsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IsizeVisitor;
        impl<'de> Visitor<'de> for IsizeVisitor {
            type Value = isize;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an isize")
            }

            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("i64 overflows isize"))
            }
        }
        deserializer.deserialize_i64(IsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct CharVisitor;
        impl<'de> Visitor<'de> for CharVisitor {
            type Value = char;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a char")
            }

            fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }

            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single-char string")),
                }
            }
        }
        deserializer.deserialize_char(CharVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }

            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }

            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }

            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }

            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

macro_rules! deserialize_tuple {
    ($($len:expr => ($($t:ident),+),)*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($t),+> {
                    type Value = ($($t,)+);

                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of arity {}", $len)
                    }

                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        Ok(($(
                            match seq.next_element::<$t>()? {
                                Some(v) => v,
                                None => return Err(Error::custom("tuple too short")),
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    )*};
}

deserialize_tuple! {
    1 => (T0),
    2 => (T0, T1),
    3 => (T0, T1, T2),
    4 => (T0, T1, T2, T3),
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_capacity_and_hasher(
                    map.size_hint().unwrap_or(0).min(4096),
                    H::default(),
                );
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MapVisitor<K, V> {
            type Value = std::collections::BTreeMap<K, V>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, T, H> Deserialize<'de> for std::collections::HashSet<T, H>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(deserializer)?.into_iter().collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(deserializer)?.into_iter().collect())
    }
}
