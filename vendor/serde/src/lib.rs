#![allow(clippy::all)]
//! A vendored, minimal re-implementation of the `serde` data model.
//!
//! This workspace builds in a fully offline container, so the real
//! crates.io `serde` cannot be fetched. This crate provides the subset of
//! the serde API surface the workspace actually uses — the `ser`/`de`
//! trait system, impls for the std types the indexes persist, and the
//! `Serialize`/`Deserialize` derive macros (re-exported from the sibling
//! `serde_derive` stand-in). The trait signatures mirror upstream serde
//! so the code using them compiles unchanged against either.

pub mod de;
pub mod ser;

pub use crate::de::{Deserialize, Deserializer};
pub use crate::ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
