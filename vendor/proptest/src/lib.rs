#![allow(clippy::all)]
//! A vendored, minimal `proptest`-compatible property-testing harness.
//!
//! The real proptest cannot be fetched in this offline environment. This
//! stand-in implements the subset of its API the workspace's test suites
//! use: the `proptest!` macro, `Strategy` with `prop_map`/`prop_flat_map`/
//! `prop_filter`, `Just`, `any`, integer-range and string-pattern
//! strategies, `collection::vec`, `option::of`, `prop_oneof!`, and the
//! `prop_assert*` macros. Cases are generated from a fixed seed, so runs
//! are deterministic; failing cases report their case number and seed.
//! Shrinking is not implemented — failures report the first offending case.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Builds a config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property within one generated case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }

    /// The failure reason.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator state for one test case (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Base seed shared by all runs (determinism beats variety in CI).
    pub const BASE_SEED: u64 = 0x464c_6958_2004_edb7;

    /// Builds the generator for case number `case` of a named test.
    pub fn for_case(test_hash: u64, case: u64) -> Self {
        Self {
            state: Self::BASE_SEED ^ test_hash.rotate_left(17) ^ case.wrapping_mul(0x9E37_79B9),
        }
    }

    /// Produces the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// FNV-1a hash of a test name, for per-test seed derivation.
    pub fn hash_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Declares property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_hash = $crate::TestRng::hash_name(stringify!($name));
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(test_hash, case as u64);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::strategy::Strategy::generate(
                        &($strat), &mut __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property when `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} != {:?}", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: {:?} != {:?}", format!($($fmt)+), left, right
        );
    }};
}

/// Fails the enclosing property when `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} == {:?}", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}: {:?} == {:?}", format!($($fmt)+), left, right
        );
    }};
}

/// Picks one of several strategies per case. Mirrors `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}
