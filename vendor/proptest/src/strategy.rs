//! The `Strategy` trait and core combinators.

use crate::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Retains only values passing `f` (bounded retries, then panics with
    /// `reason` — matching proptest's rejection semantics loosely).
    fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + v) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0.0),
    (S0.0, S1.1),
    (S0.0, S1.1, S2.2),
    (S0.0, S1.1, S2.2, S3.3),
    (S0.0, S1.1, S2.2, S3.3, S4.4),
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
