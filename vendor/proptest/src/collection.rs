//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::TestRng;

/// An inclusive-exclusive element-count range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

/// Strategy for `Vec<T>` with an element strategy and a size range.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Builds a `Vec` strategy. Mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
