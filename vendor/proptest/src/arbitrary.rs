//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use crate::TestRng;

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`. Mirrors `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any valid scalar value.
        if rng.below(8) == 0 {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
        } else {
            (0x20u8 + rng.below(0x5F) as u8) as char
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(20) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.below(4) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(16) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}
