//! Option strategies, mirroring `proptest::option`.

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy producing `Option<T>` from a `T` strategy.
pub struct OptionStrategy<S> {
    inner: S,
}

/// Wraps `inner` so roughly 1 in 4 cases is `None`. Mirrors
/// `proptest::option::of`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
