//! String generation from a small regex-like pattern language.
//!
//! Upstream proptest treats `&str` as a full regex strategy. This stand-in
//! supports the pattern subset the workspace's tests use: literal
//! characters, character classes `[a-z0-9-]`, the `\PC` printable-character
//! escape, and `{n}` / `{n,m}` repetition. Unsupported syntax panics with a
//! clear message so a silently-wrong generator can't slip in.

use crate::TestRng;

enum Atom {
    /// Inclusive char ranges, e.g. `[a-z0-9-]`.
    Class(Vec<(char, char)>),
    /// `\PC`: any printable (non-control) character.
    Printable,
    /// One literal character.
    Literal(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = (piece.max - piece.min + 1) as u64;
        let count = piece.min + rng.below(span) as usize;
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Printable => {
            // Mostly ASCII printable, occasionally Latin-1/odd printables.
            match rng.below(10) {
                0 => char::from_u32(0xA1 + rng.below(0x24F - 0xA1) as u32).unwrap_or('x'),
                1 => ['ß', '€', '→', '☃'][rng.below(4) as usize],
                _ => (0x20u8 + rng.below(0x5F) as u8) as char,
            }
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let span = hi as u64 - lo as u64 + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                }
                pick -= span;
            }
            ranges[0].0
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
                let body = &chars[i + 1..close];
                i = close + 1;
                Atom::Class(parse_class(body, pattern))
            }
            '\\' => {
                // Only `\PC` (printable) is supported.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Atom::Printable
                } else {
                    panic!(
                        "unsupported escape at offset {i} in pattern {pattern:?} \
                         (vendored proptest supports only \\PC)"
                    );
                }
            }
            '(' | ')' | '|' | '*' | '+' | '?' | '.' => panic!(
                "unsupported regex operator {:?} in pattern {pattern:?} \
                 (vendored proptest supports literals, classes, \\PC, and {{n,m}})",
                chars[i]
            ),
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(0),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition {{{min},{max}}} in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(body: &[char], pattern: &str) -> Vec<(char, char)> {
    assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            ranges.push((body[i], body[i + 2]));
            i += 3;
        } else {
            ranges.push((body[i], body[i]));
            i += 1;
        }
    }
    ranges
}
