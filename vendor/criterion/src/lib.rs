#![allow(clippy::all)]
//! A vendored, minimal `criterion`-compatible benchmark harness.
//!
//! The real criterion cannot be fetched in this offline environment, so
//! this stand-in implements the subset of its API the bench targets use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros) with an
//! honest, simple timer: per benchmark it warms up, then reports the mean
//! and minimum wall time over `sample_size` timed batches.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from std.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work-unit annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + batch sizing: aim for batches of at least ~1ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / u32::try_from(per_batch).unwrap_or(u32::MAX));
        }
    }
}

/// Top-level harness state.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Self { _private: () }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 10, None, f);
        self
    }

    /// Accepted for API compatibility; this harness sizes batches itself.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; this harness warms up per benchmark.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates the work done per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / u32::try_from(bencher.samples.len()).unwrap_or(u32::MAX);
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if mean.as_nanos() > 0 => {
            let gib_s = bytes as f64 / mean.as_secs_f64() / (1u64 << 30) as f64;
            format!("  [{gib_s:.3} GiB/s]")
        }
        Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
            let elem_s = n as f64 / mean.as_secs_f64();
            format!("  [{elem_s:.0} elem/s]")
        }
        _ => String::new(),
    };
    println!("  {name}: mean {mean:?}, min {min:?}{rate}");
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running listed groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
