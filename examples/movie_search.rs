//! Movie-search scenario: the paper's §1.1 motivating example.
//!
//! The query `/movie[title="Matrix: Revolutions"]/actor/movie` fails on
//! heterogeneous data: one source tags films `science-fiction`, titles
//! differ, and the path is longer than one step. The relaxed query
//! `//~movie[title ~ "Matrix: Revolutions"]//~actor//~movie` matches
//! similar tags (from an ontology) and decays relevance with path length.
//!
//! Run with: `cargo run --example movie_search`

use flix::{Flix, FlixConfig, TagSimilarity, VagueEvaluator, VagueQuery};
use std::sync::Arc;
use xmlgraph::{parse_document, Collection, LinkSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two film databases with different schemas, linked by an actor page.
    let imdb_like = r#"
        <movie id="m1">
          <title>Matrix: Revolutions</title>
          <cast>
            <actor id="a1">Keanu Reeves
              <appears-in xlink:href="scifidb.xml#sf1"/>
              <appears-in xlink:href="scifidb.xml#sf2"/>
            </actor>
            <actor id="a2">Carrie-Anne Moss</actor>
          </cast>
        </movie>"#;
    let scifi_db = r#"
        <collection id="c1">
          <science-fiction id="sf1">
            <name>Matrix 3</name>
            <starring>Keanu Reeves</starring>
          </science-fiction>
          <science-fiction id="sf2">
            <name>Johnny Mnemonic</name>
            <starring>Keanu Reeves</starring>
          </science-fiction>
          <documentary id="d1"><name>Making of The Matrix</name></documentary>
        </collection>"#;

    let spec = LinkSpec::default();
    let mut coll = Collection::new();
    for (name, text) in [("imdb.xml", imdb_like), ("scifidb.xml", scifi_db)] {
        let doc = parse_document(name, text, &mut coll.tags, &spec).map_err(|e| e.to_string())?;
        coll.add_document(doc)?;
    }
    let graph = Arc::new(coll.seal());
    let flix = Flix::build(graph.clone(), FlixConfig::Naive);

    // The ontology: `science-fiction` is a kind of `movie`; a documentary
    // is only loosely one.
    let mut sims = TagSimilarity::new();
    sims.add("movie", "science-fiction", 0.9)
        .add("movie", "documentary", 0.3)
        .add("actor", "starring", 0.7);
    let eval = VagueEvaluator::new(sims, 0.8);

    // Step 1 of //~movie//~actor//~movie: find the actors under the movie.
    let movie_root = graph.doc_root(0);
    println!("~actor descendants of the Matrix movie:");
    let actors = eval.evaluate(
        &flix,
        &VagueQuery {
            start: movie_root,
            target: "actor".into(),
            min_score: 0.1,
            top_k: 10,
        },
    );
    for r in &actors {
        println!(
            "  score {:.2}  dist {}  <{}> {:?}",
            r.score,
            r.distance,
            r.matched_tag,
            graph.element(r.node).text
        );
    }

    // Step 2: movies those actors appear in — through the cross-database
    // `appears-in` links, with `science-fiction` matching `~movie`.
    let keanu = actors
        .iter()
        .find(|r| graph.element(r.node).text.contains("Keanu"))
        .ok_or("Keanu not found")?;
    println!("\n~movie descendants of that actor (films via links):");
    let movies = eval.evaluate(
        &flix,
        &VagueQuery {
            start: keanu.node,
            target: "movie".into(),
            min_score: 0.1,
            top_k: 10,
        },
    );
    for r in &movies {
        let title_tag = graph
            .collection
            .tags
            .get("name")
            .or_else(|| graph.collection.tags.get("title"))
            .ok_or("no name/title tag")?;
        let title = flix
            .find_descendants(r.node, title_tag, &flix::QueryOptions::default())
            .first()
            .map(|t| graph.element(t.node).text.clone())
            .unwrap_or_default();
        println!(
            "  score {:.2}  dist {}  <{}> {}",
            r.score, r.distance, r.matched_tag, title
        );
    }
    assert!(
        movies.iter().any(|r| r.matched_tag == "science-fiction"),
        "the relaxed query must find the science-fiction films"
    );
    println!("\nThe strict query /movie/actor/movie would have returned nothing.");
    Ok(())
}
