//! Quickstart: parse linked XML documents, build a FliX framework, and run
//! descendants and connection queries across document borders.
//!
//! Run with: `cargo run --example quickstart`

use flix::{Flix, FlixConfig, QueryOptions};
use std::sync::Arc;
use xmlgraph::{parse_document, Collection, LinkSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three small documents: a thesis cites a paper, the paper cites a
    // book chapter inside another document (fragment link).
    let thesis = r#"<?xml version="1.0"?>
        <thesis id="t1">
          <title>Indexing Linked XML</title>
          <chapter>
            <section>
              <cite xlink:href="paper.xml"/>
            </section>
          </chapter>
        </thesis>"#;
    let paper = r#"
        <paper id="p1">
          <title>HOPI: An Efficient Connection Index</title>
          <related>
            <cite xlink:href="book.xml#ch2"/>
          </related>
        </paper>"#;
    let book = r#"
        <book id="b1">
          <chapter id="ch1"><title>Foundations</title></chapter>
          <chapter id="ch2"><title>Two-Hop Covers</title>
            <section><paper>embedded survey</paper></section>
          </chapter>
        </book>"#;

    let spec = LinkSpec::default();
    let mut coll = Collection::new();
    for (name, text) in [
        ("thesis.xml", thesis),
        ("paper.xml", paper),
        ("book.xml", book),
    ] {
        let doc = parse_document(name, text, &mut coll.tags, &spec)
            .map_err(|e| format!("parsing {name}: {e}"))?;
        coll.add_document(doc)?;
    }

    let graph = Arc::new(coll.seal());
    let stats = graph.stats();
    println!(
        "collection: {} documents, {} elements, {} links, {} tags",
        stats.documents, stats.elements, stats.links, stats.tags
    );

    // Build FliX. The Naive configuration gives each document its own meta
    // document; the strategy selector picks PPO for all three (they are
    // trees) and the citation links become runtime links.
    let flix = Flix::build(graph.clone(), FlixConfig::Naive);
    let fstats = flix.stats();
    println!(
        "framework: {} meta documents ({} PPO / {} HOPI / {} APEX), {} runtime links, {} bytes",
        fstats.meta_docs,
        fstats.ppo_metas,
        fstats.hopi_metas,
        fstats.apex_metas,
        fstats.runtime_links,
        fstats.index_bytes
    );

    // Query: every `title` reachable from the thesis root — its own title,
    // the cited paper's, and the transitively cited book chapter's.
    let title = graph.collection.tags.get("title").ok_or("no title tag")?;
    let thesis_root = graph.doc_root(0);
    println!("\nthesis//title (descendants across citation links):");
    for r in flix.find_descendants(thesis_root, title, &QueryOptions::default()) {
        let (doc, _) = graph.local_of(r.node);
        println!(
            "  dist {:>2}  [{}] {:?}",
            r.distance,
            graph.collection.doc(doc).name,
            graph.element(r.node).text
        );
    }

    // Connection test: is the book's chapter 2 reachable from the thesis?
    let ch2 = graph.global(
        2,
        graph
            .collection
            .doc(2)
            .anchor("ch2")
            .ok_or("anchor ch2 missing")?,
    );
    match flix.connection_test(thesis_root, ch2, &QueryOptions::default()) {
        Some(d) => println!("\nthesis //=> book#ch2: connected at distance {d}"),
        None => println!("\nthesis //=> book#ch2: not connected"),
    }
    // ...and the reverse direction is not:
    assert!(flix
        .connection_test(ch2, thesis_root, &QueryOptions::default())
        .is_none());
    println!("book#ch2 //=> thesis: not connected (as expected)");
    Ok(())
}
