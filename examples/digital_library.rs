//! Digital-library scenario: a DBLP-like citation corpus, compared across
//! FliX configurations — the paper's own evaluation setting (§6) in
//! example form.
//!
//! Run with: `cargo run --release --example digital_library`

use flix::{Flix, FlixConfig, QueryOptions, ResultStream, StrategyKind};
use flixobs::Stopwatch;
use std::sync::Arc;
use workloads::{generate_dblp, DblpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized corpus (use DblpConfig::paper_scale() for the full 6,210
    // documents the paper used).
    let cfg = DblpConfig {
        documents: 1200,
        ..DblpConfig::default()
    };
    let graph = Arc::new(generate_dblp(&cfg).seal());
    let s = graph.stats();
    println!(
        "corpus: {} publications, {} elements, {} citation links",
        s.documents, s.elements, s.links
    );

    // Pick a richly citing recent paper as the query start element: its
    // descendants are the transitive closure of its reference list.
    let start_doc = (0..graph.collection.doc_count() as u32)
        .max_by_key(|&d| graph.doc_graph.out_degree(d))
        .ok_or("empty corpus")?;
    let start = graph.doc_root(start_doc);
    println!(
        "start element: root of {:?} ({} direct citations)\n",
        graph.collection.doc(start_doc).name,
        graph.doc_graph.out_degree(start_doc)
    );

    // "All `title` elements of publications reachable from this paper via
    // citations" — the paper's `a//article`-style query (§6).
    let title = graph.collection.tags.get("title").ok_or("no title tag")?;
    let configs = [
        FlixConfig::Monolithic(StrategyKind::Hopi),
        FlixConfig::Naive,
        FlixConfig::MaximalPpo,
        FlixConfig::UnconnectedHopi {
            partition_size: 2000,
        },
    ];
    for config in configs {
        let t0 = Stopwatch::start();
        let flix = Flix::build(graph.clone(), config);
        let build = t0.elapsed();
        let t1 = Stopwatch::start();
        let results = flix.find_descendants(start, title, &QueryOptions::default());
        let full = t1.elapsed();
        let t2 = Stopwatch::start();
        let top10 = flix.find_descendants(start, title, &QueryOptions::top_k(10));
        let first10 = t2.elapsed();
        let st = flix.stats();
        println!(
            "{:<12} build {:>8.1?}  size {:>9} B  metas {:>4}  | {} results in {:>8.1?}, top-10 in {:>8.1?}",
            config.to_string(),
            build,
            st.index_bytes,
            st.meta_docs,
            results.len(),
            full,
            first10,
        );
        assert_eq!(top10.len(), 10.min(results.len()));
    }

    // Streaming: the paper's client/evaluator decoupling. Results arrive on
    // a channel while the evaluator keeps working; we stop after ten.
    println!("\nstreaming the ten nearest results:");
    let flix = Arc::new(Flix::build(graph.clone(), FlixConfig::MaximalPpo));
    let stream = ResultStream::spawn(flix, start, title, QueryOptions::default());
    for (i, r) in stream.take(10).enumerate() {
        let (doc, _) = graph.local_of(r.node);
        println!(
            "  #{:<2} dist {:>2}  {:?} — {:?}",
            i + 1,
            r.distance,
            graph.collection.doc(doc).name,
            graph.element(r.node).text
        );
    }
    Ok(())
}
