//! Web-portal scenario: a densely interlinked page collection, the
//! Unconnected-HOPI regime — plus index persistence through the page
//! store, standing in for the paper's database-backed index tables.
//!
//! Run with: `cargo run --release --example web_portal`

use flix::persist::{load_flix, save_flix};
use flix::{Flix, FlixConfig, QueryOptions};
use pagestore::{BlobStore, BufferPool, FileDisk};
use std::sync::Arc;
use workloads::{generate_web, WebConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = WebConfig {
        documents: 120,
        elements_per_doc: 60,
        intra_links_per_doc: 5,
        inter_links_per_doc: 8,
        tag_count: 12,
        seed: 7,
    };
    let graph = Arc::new(generate_web(&cfg).seal());
    let s = graph.stats();
    println!(
        "portal: {} pages, {} elements, {} links ({} edges total)",
        s.documents, s.elements, s.links, s.edges
    );

    // Hybrid would find nothing tree-shaped here; Unconnected HOPI is the
    // configuration of choice for heavy linking.
    let flix = Flix::build(
        graph.clone(),
        FlixConfig::UnconnectedHopi {
            partition_size: 1500,
        },
    );
    let st = flix.stats();
    println!(
        "framework: {} HOPI partitions, {} runtime links, {} B",
        st.hopi_metas, st.runtime_links, st.index_bytes
    );

    // A navigation query: everything tagged w3 reachable from page 0's root.
    let w3 = graph.collection.tags.get("w3").ok_or("no w3 tag")?;
    let results = flix.find_descendants(graph.doc_root(0), w3, &QueryOptions::within(6));
    println!(
        "page0 // w3 (within 6 hops): {} results, nearest at distance {}",
        results.len(),
        results.first().map(|r| r.distance).unwrap_or(0)
    );

    // Persist the framework into a file-backed page store and reload it —
    // the paper's "indexes live in database tables" deployment.
    let dir = std::env::temp_dir().join("flix-web-portal");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("indexes.db");
    let _ = std::fs::remove_file(&path);
    {
        let disk = Arc::new(FileDisk::open(&path)?);
        let pool = Arc::new(BufferPool::new(disk, 256));
        let mut store = BlobStore::new(pool.clone());
        save_flix(&flix, &mut store, "portal")?;
        // persist the blob directory itself as the catalogue
        // flixcheck: allow(unsynced-write): example scratch file; real deployments keep the directory in a WAL-backed DurableStore
        std::fs::write(dir.join("catalogue"), store.export_directory())?;
        pool.flush_all()?;
        println!(
            "\npersisted framework to {:?} ({} pages written)",
            path,
            pool.disk().page_count()
        );
    }
    {
        let disk = Arc::new(FileDisk::open(&path)?);
        let pool = Arc::new(BufferPool::new(disk, 256));
        let catalogue = std::fs::read(dir.join("catalogue"))?;
        let store = BlobStore::import_directory(pool, &catalogue)?;
        let reloaded = load_flix(&store, "portal", graph.clone())?;
        let again = reloaded.find_descendants(graph.doc_root(0), w3, &QueryOptions::within(6));
        assert_eq!(results, again, "reloaded framework answers identically");
        println!("reloaded framework answers the query identically ✓");
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dir.join("catalogue"));
    Ok(())
}
