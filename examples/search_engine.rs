//! A miniature XML search engine on top of FliX: the paper's Figure-2
//! stack (query processor above the Path Expression Evaluator), plus the
//! §7 operational features — query caching and load-driven self-tuning.
//!
//! Run with: `cargo run --release --example search_engine`

use flix::{
    CachedFlix, Flix, FlixConfig, LoadMonitor, PathQuery, QueryEngine, QueryOptions,
    Recommendation, TagSimilarity,
};
use std::ops::ControlFlow;
use std::sync::Arc;
use workloads::{generate_dblp, DblpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = DblpConfig {
        documents: 800,
        ..DblpConfig::default()
    };
    let graph = Arc::new(generate_dblp(&cfg).seal());
    println!(
        "library: {} publications, {} elements, {} citation links\n",
        graph.stats().documents,
        graph.stats().elements,
        graph.stats().links
    );
    let flix = Arc::new(Flix::build(graph.clone(), FlixConfig::Naive));

    // --- Path-expression queries (§1.1 style) -------------------------
    let mut sims = TagSimilarity::new();
    sims.add("publication", "article", 0.95)
        .add("publication", "inproceedings", 0.9)
        .add("reference", "cite", 0.9);
    let engine = QueryEngine::new(&flix, sims, 0.85, 0.05);

    let queries = [
        r#"//~publication[booktitle = "VLDB"]"#,
        r#"//inproceedings//cite//~publication"#,
        r#"//~publication[title ~ "Indexing XML"]"#,
    ];
    for text in queries {
        let q = PathQuery::parse(text)?;
        let res = engine.evaluate(&q);
        println!("{text}");
        println!("  {} results; top 3:", res.len());
        for b in res.iter().take(3) {
            let (doc, _) = graph.local_of(b.node);
            println!(
                "    score {:.2}  {:?} <{}>",
                b.score,
                graph.collection.doc(doc).name,
                graph.collection.tags.name(graph.tag_of(b.node))
            );
        }
    }

    // --- Query cache (§7: caching frequent sub-queries) ----------------
    let cached = CachedFlix::new(flix.clone(), 128);
    let title = graph.collection.tags.get("title").ok_or("no title tag")?;
    let hot_start = graph.doc_root(0);
    for _ in 0..50 {
        let _warm = cached.find_descendants(hot_start, title, &QueryOptions::default());
    }
    let (hits, misses) = cached.stats();
    println!("\nquery cache after 50 repeats of one hot query: {hits} hits, {misses} miss(es)");

    // --- Self-tuning (§7: watch the load, re-plan the build) -----------
    let mut monitor = LoadMonitor::new();
    // a link-heavy workload: long-range descendant scans from late papers
    for d in (0..graph.collection.doc_count() as u32).rev().take(30) {
        let start = graph.doc_root(d);
        let mut results = 0usize;
        let stats =
            flix.for_each_descendant_traced(start, title, &QueryOptions::default(), |_, _| {
                results += 1;
                ControlFlow::Continue(())
            });
        monitor.record(stats, results);
    }
    println!(
        "load monitor: {} queries, {:.1} meta-document lookups and {:.1} links per query",
        monitor.queries(),
        monitor.avg_lookups(),
        monitor.avg_links()
    );
    match monitor.recommend(flix.config(), 10) {
        Recommendation::Keep => println!("recommendation: keep {}", flix.config()),
        Recommendation::Rebuild { suggestion, reason } => {
            println!("recommendation: rebuild as {suggestion} — {reason}");
            let rebuilt = Flix::build(graph.clone(), suggestion);
            println!(
                "rebuilt: {} meta documents (was {})",
                rebuilt.meta_count(),
                flix.meta_count()
            );
        }
    }
    Ok(())
}
